#include "sim/partition.h"

#include <algorithm>

namespace pw::sim {

PartitionedSimulator::PartitionedSimulator(const Options& opts)
    : lookahead_(opts.lookahead) {
  PW_CHECK_GT(opts.num_lps, 0);
  if (opts.num_lps > 1) {
    PW_CHECK_GT(lookahead_.nanos(), 0)
        << "multi-LP runs need a positive lookahead";
  }
  int threads = opts.threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads_ = std::min(threads, opts.num_lps);
  if (threads_ < 1) threads_ = 1;
  lps_.reserve(static_cast<std::size_t>(opts.num_lps));
  arenas_.reserve(static_cast<std::size_t>(opts.num_lps));
  for (int i = 0; i < opts.num_lps; ++i) {
    lps_.push_back(std::make_unique<Simulator>());
    arenas_.push_back(std::make_unique<common::Arena>());
  }
  outboxes_.resize(static_cast<std::size_t>(opts.num_lps));
}

PartitionedSimulator::~PartitionedSimulator() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void PartitionedSimulator::DeliverPending() {
  for (Outbox& box : outboxes_) {
    if (box.messages.empty()) continue;
    pending_.insert(pending_.end(),
                    std::make_move_iterator(box.messages.begin()),
                    std::make_move_iterator(box.messages.end()));
    box.messages.clear();
  }
  if (pending_.empty()) return;
  // The deterministic merge rule: delivery time first, then source LP, then
  // the source's own send order. Injection happens in this order on the
  // coordinator thread, so destination seq numbers — the FIFO tie-break for
  // equal timestamps — are a pure function of the message set.
  std::sort(pending_.begin(), pending_.end(),
            [](const Message& a, const Message& b) {
              if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (Message& m : pending_) {
    PW_CHECK_GE(m.at_ns, lp(m.dst).now().nanos())
        << "cross-LP message would arrive in LP " << m.dst << "'s past";
    lp(m.dst).ScheduleAt(TimePoint::FromNanos(m.at_ns), std::move(m.fn));
    ++stats_.messages_delivered;
  }
  pending_.clear();
}

void PartitionedSimulator::SnapshotNextTimes(std::vector<std::int64_t>* n) const {
  n->clear();
  n->reserve(lps_.size());
  for (const auto& s : lps_) n->push_back(s->NextQueuedTimeNs());
}

std::int64_t PartitionedSimulator::WindowEnd(const std::vector<std::int64_t>& n,
                                             int i) const {
  std::int64_t m = kInf;
  for (int j = 0; j < num_lps(); ++j) {
    if (j != i && n[static_cast<std::size_t>(j)] < m) {
      m = n[static_cast<std::size_t>(j)];
    }
  }
  if (m == kInf) return kInf;
  return m + lookahead_.nanos();
}

void PartitionedSimulator::EnsureWorkers() {
  if (!workers_.empty() || threads_ <= 1) return;
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void PartitionedSimulator::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> l(mu_);
      cv_work_.wait(l, [this] {
        return shutdown_ || next_job_ < round_jobs_.size();
      });
      if (next_job_ >= round_jobs_.size()) {
        if (shutdown_) return;
        continue;
      }
      job = round_jobs_[next_job_++];
    }
    lp(job.lp).RunUntilBefore(TimePoint::FromNanos(job.w_end_ns));
    {
      std::lock_guard<std::mutex> l(mu_);
      if (--jobs_outstanding_ == 0) cv_done_.notify_all();
    }
  }
}

void PartitionedSimulator::ExecuteJobs(const std::vector<Job>& jobs) {
  if (jobs.empty()) return;
  if (threads_ <= 1 || jobs.size() == 1) {
    for (const Job& j : jobs) {
      lp(j.lp).RunUntilBefore(TimePoint::FromNanos(j.w_end_ns));
    }
    return;
  }
  EnsureWorkers();
  {
    std::lock_guard<std::mutex> l(mu_);
    round_jobs_ = jobs;
    next_job_ = 0;
    jobs_outstanding_ = jobs.size();
  }
  cv_work_.notify_all();
  // The coordinator pulls jobs too, then waits out stragglers.
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> l(mu_);
      if (next_job_ >= round_jobs_.size()) break;
      job = round_jobs_[next_job_++];
    }
    lp(job.lp).RunUntilBefore(TimePoint::FromNanos(job.w_end_ns));
    {
      std::lock_guard<std::mutex> l(mu_);
      if (--jobs_outstanding_ == 0) cv_done_.notify_all();
    }
  }
  std::unique_lock<std::mutex> l(mu_);
  cv_done_.wait(l, [this] { return jobs_outstanding_ == 0; });
  round_jobs_.clear();
  next_job_ = 0;
}

std::int64_t PartitionedSimulator::Run() {
  const std::int64_t before = TotalEventsExecuted();
  std::vector<std::int64_t> n;
  std::vector<Job> jobs;
  for (;;) {
    DeliverPending();
    SnapshotNextTimes(&n);
    jobs.clear();
    for (int i = 0; i < num_lps(); ++i) {
      const std::int64_t w = WindowEnd(n, i);
      if (n[static_cast<std::size_t>(i)] < w) jobs.push_back(Job{i, w});
    }
    if (jobs.empty()) break;  // everything quiescent, nothing in flight
    ++stats_.rounds;
    ExecuteJobs(jobs);
  }
  return TotalEventsExecuted() - before;
}

bool PartitionedSimulator::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) return true;
  std::vector<std::int64_t> n;
  std::vector<Job> jobs;
  for (;;) {
    DeliverPending();
    SnapshotNextTimes(&n);
    jobs.clear();
    std::int64_t lp0_end = 0;
    bool lp0_runs = false;
    for (int i = 0; i < num_lps(); ++i) {
      const std::int64_t w = WindowEnd(n, i);
      if (n[static_cast<std::size_t>(i)] >= w) continue;
      if (i == 0) {
        lp0_runs = true;  // runs on the coordinator so pred sees LP-0 state
        lp0_end = w;
      } else {
        jobs.push_back(Job{i, w});
      }
    }
    if (!lp0_runs && jobs.empty()) return false;
    ++stats_.rounds;
    bool satisfied = false;
    if (jobs.empty()) {
      // Fast path (and the exactness path for control-LP-only workloads):
      // no peer windows, run LP 0 inline.
      if (lp0_runs) {
        satisfied = lp(0).RunUntilBeforePredicate(
            TimePoint::FromNanos(lp0_end), pred);
      }
    } else if (!lp0_runs) {
      ExecuteJobs(jobs);
    } else if (threads_ <= 1) {
      // LPs are independent within a round, so execution order cannot
      // change the result; LP order keeps it simple.
      satisfied = lp(0).RunUntilBeforePredicate(TimePoint::FromNanos(lp0_end),
                                                pred);
      for (const Job& j : jobs) {
        lp(j.lp).RunUntilBefore(TimePoint::FromNanos(j.w_end_ns));
      }
    } else {
      EnsureWorkers();
      {
        std::lock_guard<std::mutex> l(mu_);
        round_jobs_ = jobs;
        next_job_ = 0;
        jobs_outstanding_ = jobs.size();
      }
      cv_work_.notify_all();
      satisfied = lp(0).RunUntilBeforePredicate(TimePoint::FromNanos(lp0_end),
                                                pred);
      for (;;) {
        Job job;
        {
          std::unique_lock<std::mutex> l(mu_);
          if (next_job_ >= round_jobs_.size()) break;
          job = round_jobs_[next_job_++];
        }
        lp(job.lp).RunUntilBefore(TimePoint::FromNanos(job.w_end_ns));
        {
          std::lock_guard<std::mutex> l(mu_);
          if (--jobs_outstanding_ == 0) cv_done_.notify_all();
        }
      }
      std::unique_lock<std::mutex> l(mu_);
      cv_done_.wait(l, [this] { return jobs_outstanding_ == 0; });
      round_jobs_.clear();
      next_job_ = 0;
    }
    if (satisfied) return true;
  }
}

std::int64_t PartitionedSimulator::RunUntil(TimePoint t) {
  const std::int64_t before = TotalEventsExecuted();
  const std::int64_t bound = t.nanos() == kInf ? kInf : t.nanos() + 1;
  std::vector<std::int64_t> n;
  std::vector<Job> jobs;
  for (;;) {
    DeliverPending();
    SnapshotNextTimes(&n);
    jobs.clear();
    for (int i = 0; i < num_lps(); ++i) {
      std::int64_t w = WindowEnd(n, i);
      if (w > bound) w = bound;
      if (n[static_cast<std::size_t>(i)] < w) jobs.push_back(Job{i, w});
    }
    if (jobs.empty()) break;
    ++stats_.rounds;
    ExecuteJobs(jobs);
  }
  // Remaining events (if any) are strictly after t; snap every clock to t,
  // mirroring the serial engine's RunUntil contract.
  for (auto& s : lps_) {
    if (s->now().nanos() < t.nanos()) s->RunUntil(t);
  }
  return TotalEventsExecuted() - before;
}

std::int64_t PartitionedSimulator::TotalEventsExecuted() const {
  std::int64_t total = 0;
  for (const auto& s : lps_) total += s->events_executed();
  return total;
}

TimePoint PartitionedSimulator::MaxNow() const {
  TimePoint m;
  for (const auto& s : lps_) {
    if (s->now().nanos() > m.nanos()) m = s->now();
  }
  return m;
}

bool PartitionedSimulator::AllEmpty() const {
  for (const auto& s : lps_) {
    if (!s->empty()) return false;
  }
  return true;
}

bool PartitionedSimulator::MessagesPending() const {
  if (!pending_.empty()) return true;
  for (const Outbox& box : outboxes_) {
    if (!box.messages.empty()) return true;
  }
  return false;
}

bool PartitionedSimulator::Deadlocked() const {
  if (!AllEmpty() || MessagesPending()) return false;
  return !BlockedEntities().empty();
}

std::vector<std::string> PartitionedSimulator::BlockedEntities() const {
  std::vector<std::string> out;
  for (const auto& s : lps_) {
    std::vector<std::string> b = s->BlockedEntities();
    out.insert(out.end(), std::make_move_iterator(b.begin()),
               std::make_move_iterator(b.end()));
  }
  return out;
}

}  // namespace pw::sim
