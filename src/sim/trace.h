// Execution trace recording, for the paper's Figure 9/11/12-style traces.
//
// Spans record which resource (device/core) ran which client's computation
// over which simulated interval. The recorder can compute utilization,
// per-client busy shares (for proportional-share validation), and render a
// compact ASCII Gantt chart for bench output.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"

namespace pw::sim {

struct TraceSpan {
  std::string resource;   // e.g. "island0/dev3"
  std::int64_t client;    // client id, or -1 for system work
  std::string label;      // e.g. "fwd", "allreduce", "xfer"
  TimePoint start;
  TimePoint end;
};

class TraceRecorder {
 public:
  void Record(std::string resource, std::int64_t client, std::string label,
              TimePoint start, TimePoint end);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  void Clear() { spans_.clear(); }

  // Fraction of [begin, end) during which `resource` was busy.
  double Utilization(const std::string& resource, TimePoint begin, TimePoint end) const;

  // Mean utilization over all resources seen in the trace.
  double MeanUtilization(TimePoint begin, TimePoint end) const;

  // Busy time per client over [begin, end), summed across resources.
  std::map<std::int64_t, Duration> BusyPerClient(TimePoint begin, TimePoint end) const;

  // Renders one text row per resource; each column is a time bucket showing
  // the client digit that dominated the bucket ('.' = idle). Resources are
  // sorted by name; at most `max_rows` rows are emitted.
  std::string RenderAscii(TimePoint begin, TimePoint end, int columns,
                          int max_rows = 16) const;

  std::vector<std::string> Resources() const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace pw::sim
