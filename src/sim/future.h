// One-shot futures for the simulated world.
//
// A SimFuture<T> is fulfilled exactly once by its SimPromise<T>. Callbacks
// added via Then() run as zero-delay simulator events — never inline — so
// completion order is deterministic and re-entrancy is impossible. These
// futures are the "buffer futures" of the paper's data plane: executors
// enqueue kernels whose inputs are futures, and network sends are triggered
// by future completion.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "sim/simulator.h"

namespace pw::sim {

// Empty payload for futures that only signal completion.
struct Unit {};

namespace internal {

template <typename T>
struct FutureState {
  explicit FutureState(Simulator* s) : sim(s) {}

  Simulator* sim;
  std::optional<T> value;
  std::vector<std::function<void(const T&)>> callbacks;
};

}  // namespace internal

template <typename T>
class SimFuture {
 public:
  SimFuture() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->value.has_value(); }

  const T& value() const {
    PW_CHECK(ready()) << "SimFuture::value() on unready future";
    return *state_->value;
  }

  // Registers a continuation; runs as a zero-delay event once the value is
  // set (immediately scheduled if already set).
  void Then(std::function<void(const T&)> fn) const {
    PW_CHECK(valid());
    if (state_->value.has_value()) {
      auto st = state_;
      state_->sim->Schedule(Duration::Zero(),
                            [st, fn = std::move(fn)] { fn(*st->value); });
    } else {
      state_->callbacks.push_back(std::move(fn));
    }
  }

 private:
  template <typename U>
  friend class SimPromise;

  explicit SimFuture(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
class SimPromise {
 public:
  explicit SimPromise(Simulator* sim)
      : state_(std::make_shared<internal::FutureState<T>>(sim)) {}

  SimFuture<T> future() const { return SimFuture<T>(state_); }

  bool fulfilled() const { return state_->value.has_value(); }

  void Set(T value) {
    PW_CHECK(!state_->value.has_value()) << "SimPromise::Set called twice";
    state_->value = std::move(value);
    auto st = state_;
    for (auto& cb : st->callbacks) {
      st->sim->Schedule(Duration::Zero(),
                        [st, cb = std::move(cb)] { cb(*st->value); });
    }
    st->callbacks.clear();
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

// Returns a future already holding `value`.
template <typename T>
SimFuture<T> ReadyFuture(Simulator* sim, T value) {
  SimPromise<T> p(sim);
  p.Set(std::move(value));
  return p.future();
}

// Completes when all of `futures` complete (with Unit payload).
// An empty set completes immediately.
SimFuture<Unit> WhenAll(Simulator* sim, const std::vector<SimFuture<Unit>>& futures);

// Counts down to zero; exposes a Unit future that fires at zero.
// Useful for joining N independent completions without materializing their
// futures (e.g. all shards of a gang finishing).
class CountdownLatch {
 public:
  CountdownLatch(Simulator* sim, int count)
      : remaining_(count), promise_(sim) {
    PW_CHECK_GE(count, 0);
    if (count == 0) promise_.Set(Unit{});
  }

  void CountDown() {
    if (forced_) return;  // latch was force-completed; late arrivals are moot
    PW_CHECK_GT(remaining_, 0);
    if (--remaining_ == 0) promise_.Set(Unit{});
  }

  // Fires the future now regardless of the remaining count and turns every
  // subsequent CountDown() into a no-op. Fault handling uses this to unwind
  // dataflow that will never complete normally (e.g. a gang whose device
  // crashed); completions already in flight then land harmlessly.
  void ForceComplete() {
    if (forced_) return;
    forced_ = true;
    if (remaining_ > 0) {
      remaining_ = 0;
      promise_.Set(Unit{});
    }
  }

  int remaining() const { return remaining_; }
  bool forced() const { return forced_; }
  SimFuture<Unit> done() const { return promise_.future(); }

 private:
  int remaining_;
  bool forced_ = false;
  SimPromise<Unit> promise_;
};

}  // namespace pw::sim
