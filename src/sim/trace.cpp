#include "sim/trace.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace pw::sim {

void TraceRecorder::Record(std::string resource, std::int64_t client,
                           std::string label, TimePoint start, TimePoint end) {
  PW_CHECK_LE(start.nanos(), end.nanos());
  spans_.push_back(TraceSpan{std::move(resource), client, std::move(label), start, end});
}

namespace {
Duration Overlap(const TraceSpan& s, TimePoint begin, TimePoint end) {
  const auto lo = std::max(s.start.nanos(), begin.nanos());
  const auto hi = std::min(s.end.nanos(), end.nanos());
  return Duration::Nanos(std::max<std::int64_t>(0, hi - lo));
}
}  // namespace

double TraceRecorder::Utilization(const std::string& resource, TimePoint begin,
                                  TimePoint end) const {
  PW_CHECK_LT(begin.nanos(), end.nanos());
  Duration busy = Duration::Zero();
  for (const auto& s : spans_) {
    if (s.resource == resource) busy += Overlap(s, begin, end);
  }
  return busy / (end - begin);
}

double TraceRecorder::MeanUtilization(TimePoint begin, TimePoint end) const {
  const auto resources = Resources();
  if (resources.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : resources) sum += Utilization(r, begin, end);
  return sum / static_cast<double>(resources.size());
}

std::map<std::int64_t, Duration> TraceRecorder::BusyPerClient(TimePoint begin,
                                                              TimePoint end) const {
  std::map<std::int64_t, Duration> out;
  for (const auto& s : spans_) {
    out[s.client] += Overlap(s, begin, end);
  }
  return out;
}

std::vector<std::string> TraceRecorder::Resources() const {
  std::set<std::string> names;
  for (const auto& s : spans_) names.insert(s.resource);
  return {names.begin(), names.end()};
}

std::string TraceRecorder::RenderAscii(TimePoint begin, TimePoint end,
                                       int columns, int max_rows) const {
  PW_CHECK_GT(columns, 0);
  PW_CHECK_LT(begin.nanos(), end.nanos());
  auto resources = Resources();
  if (static_cast<int>(resources.size()) > max_rows) {
    resources.resize(static_cast<std::size_t>(max_rows));
  }
  const std::int64_t span_ns = (end - begin).nanos();
  std::ostringstream out;
  for (const auto& r : resources) {
    // For each column pick the client with the most busy time in the bucket.
    std::string row(static_cast<std::size_t>(columns), '.');
    for (int c = 0; c < columns; ++c) {
      const TimePoint b0 = begin + Duration::Nanos(span_ns * c / columns);
      const TimePoint b1 = begin + Duration::Nanos(span_ns * (c + 1) / columns);
      std::map<std::int64_t, Duration> busy;
      for (const auto& s : spans_) {
        if (s.resource != r) continue;
        const Duration o = Overlap(s, b0, b1);
        if (o > Duration::Zero()) busy[s.client] += o;
      }
      if (busy.empty()) continue;
      auto best = std::max_element(
          busy.begin(), busy.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      const std::int64_t client = best->first;
      if (client < 0) {
        row[static_cast<std::size_t>(c)] = '#';
      } else if (client < 10) {
        row[static_cast<std::size_t>(c)] = static_cast<char>('0' + client);
      } else if (client < 36) {
        row[static_cast<std::size_t>(c)] = static_cast<char>('a' + (client - 10));
      } else {
        row[static_cast<std::size_t>(c)] = '+';
      }
    }
    out << row << "  " << r << "\n";
  }
  return out.str();
}

}  // namespace pw::sim
