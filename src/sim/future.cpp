#include "sim/future.h"

namespace pw::sim {

SimFuture<Unit> WhenAll(Simulator* sim, const std::vector<SimFuture<Unit>>& futures) {
  auto latch = std::make_shared<CountdownLatch>(sim, static_cast<int>(futures.size()));
  for (const auto& f : futures) {
    f.Then([latch](const Unit&) { latch->CountDown(); });
  }
  return latch->done();
}

}  // namespace pw::sim
