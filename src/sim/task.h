// C++20 coroutine support for writing simulated processes as straight-line
// code:
//
//   sim::Task ClientLoop(Simulator& sim, ...) {
//     for (;;) {
//       auto result = co_await client.Run(program);
//       co_await SleepFor(sim, Duration::Micros(10));
//     }
//   }
//
// Task is fire-and-forget: it starts eagerly and destroys its own frame on
// completion. A task suspended on a future that is never fulfilled simply
// parks (its frame is reclaimed at process exit) — this mirrors a blocked
// thread and is what the deadlock probes report on.
#pragma once

#include <coroutine>
#include <exception>

#include "sim/future.h"
#include "sim/simulator.h"

namespace pw::sim {

class Task {
 public:
  struct promise_type {
    Task get_return_object() { return Task{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

// Awaitable adapter for SimFuture<T>; resumes the coroutine (as a zero-delay
// event) when the future is fulfilled. Usage: `T v = co_await fut;`
template <typename T>
class FutureAwaiter {
 public:
  explicit FutureAwaiter(SimFuture<T> fut) : fut_(std::move(fut)) {}

  bool await_ready() const { return fut_.ready(); }
  void await_suspend(std::coroutine_handle<> h) {
    fut_.Then([h](const T&) { h.resume(); });
  }
  T await_resume() const { return fut_.value(); }

 private:
  SimFuture<T> fut_;
};

template <typename T>
FutureAwaiter<T> operator co_await(SimFuture<T> fut) {
  return FutureAwaiter<T>(std::move(fut));
}

// Awaitable that resumes after a simulated delay.
class SleepAwaiter {
 public:
  SleepAwaiter(Simulator* sim, Duration d) : sim_(sim), delay_(d) {}

  bool await_ready() const { return delay_ <= Duration::Zero(); }
  void await_suspend(std::coroutine_handle<> h) {
    sim_->Schedule(delay_, [h] { h.resume(); });
  }
  void await_resume() const {}

 private:
  Simulator* sim_;
  Duration delay_;
};

inline SleepAwaiter SleepFor(Simulator* sim, Duration d) {
  return SleepAwaiter(sim, d);
}

}  // namespace pw::sim
