#include "sim/simulator.h"

namespace pw::sim {

void Simulator::Step() {
  // Move the event out before popping so the callback may schedule more
  // events (priority_queue::top is const).
  Event ev = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  PW_CHECK_GE(ev.at.nanos(), now_.nanos());
  now_ = ev.at;
  ++executed_;
  ev.fn();
}

std::int64_t Simulator::Run() {
  std::int64_t n = 0;
  while (!events_.empty()) {
    Step();
    ++n;
  }
  return n;
}

std::int64_t Simulator::RunUntil(TimePoint t) {
  PW_CHECK_GE(t.nanos(), now_.nanos());
  std::int64_t n = 0;
  while (!events_.empty() && events_.top().at <= t) {
    Step();
    ++n;
  }
  now_ = t;
  return n;
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (!events_.empty()) {
    Step();
    if (pred()) return true;
  }
  return false;
}

std::vector<std::string> Simulator::BlockedEntities() const {
  std::vector<std::string> out;
  for (const auto& probe : probes_) {
    std::string desc = probe();
    if (!desc.empty()) out.push_back(std::move(desc));
  }
  return out;
}

}  // namespace pw::sim
