#include "sim/simulator.h"

#include <algorithm>

namespace pw::sim {

Simulator::~Simulator() {
  // Destroy callbacks of events still queued (live or tombstoned) so
  // captured resources are released; pool chunks free themselves.
  for (const HeapEntry& e : heap_) {
    if (e.node->cb.engaged()) e.node->cb.Destroy();
  }
  for (std::size_t i = 0; i < fifo_count_; ++i) {
    EventNode* node = fifo_[(fifo_head_ + i) & (fifo_.size() - 1)].node;
    if (node->cb.engaged()) node->cb.Destroy();
  }
}

internal::EventNode* Simulator::AllocNode() {
  EventNode* node = free_head_;
  if (node != nullptr) {
    free_head_ = node->next_free;
    node->next_free = nullptr;
    return node;
  }
  if (chunk_used_ == kChunkSize) {
    chunks_.push_back(std::make_unique<Chunk>());
    chunk_used_ = 0;
  }
  return &chunks_.back()->nodes[chunk_used_++];
}

void Simulator::RecycleNode(EventNode* node) {
  node->state = NodeState::kFree;
  node->period_ns = 0;
  ++node->generation;  // stale-ify outstanding handles
  node->next_free = free_head_;
  free_head_ = node;
}

void Simulator::HeapPush(HeapEntry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!Before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

Simulator::HeapEntry Simulator::HeapPopTop() {
  const HeapEntry top = heap_.front();
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift `last` down from the root of the 4-ary heap.
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + 4, n);
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (Before(heap_[c], heap_[best])) best = c;
      }
      if (!Before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void Simulator::FifoPush(FifoEntry e) {
  if (fifo_count_ == fifo_.size()) FifoGrow();
  fifo_[(fifo_head_ + fifo_count_) & (fifo_.size() - 1)] = e;
  ++fifo_count_;
}

void Simulator::FifoGrow() {
  const std::size_t old_cap = fifo_.size();
  const std::size_t new_cap = old_cap == 0 ? 64 : old_cap * 2;
  std::vector<FifoEntry> grown(new_cap);
  for (std::size_t i = 0; i < fifo_count_; ++i) {
    grown[i] = fifo_[(fifo_head_ + i) & (old_cap - 1)];
  }
  fifo_ = std::move(grown);
  fifo_head_ = 0;
}

bool Simulator::Cancel(EventHandle h) {
  if (!h.valid()) return false;
  EventNode* node = h.node_;
  if (node->generation != h.generation_ || node->state != NodeState::kArmed) {
    return false;
  }
  node->state = NodeState::kCancelled;
  --live_events_;
  // Destroy the callable eagerly: a cancelled watchdog's captures (often
  // shared_ptrs) must not stay alive until simulated time reaches the
  // original timestamp and the tombstone pops. The queue entry itself is
  // recycled lazily when popped. Exception: a periodic timer cancelling
  // itself from inside its own callback — destroying the callable would
  // pull the frame out from under the running lambda, so the tombstone
  // path destroys it instead.
  if (!node->executing) node->cb.Destroy();
  return true;
}

bool Simulator::IsPending(EventHandle h) const {
  return h.valid() && h.node_->generation == h.generation_ &&
         h.node_->state == NodeState::kArmed;
}

void Simulator::ReserveEvents(std::size_t n) {
  heap_.reserve(n);
  while (fifo_.size() < n) FifoGrow();
  // Pre-build pool chunks and put their nodes straight onto the free list.
  // The partially used tail of the current chunk (at most kChunkSize-1
  // nodes) is abandoned — AllocNode's fresh-allocation path only looks at
  // the last chunk, and correctness needs only that every free node is
  // reachable exactly once.
  chunks_.reserve(n / kChunkSize + 1);
  while (chunks_.size() * kChunkSize < n) {
    chunks_.push_back(std::make_unique<Chunk>());
    chunk_used_ = kChunkSize;
    for (EventNode& node : chunks_.back()->nodes) {
      node.next_free = free_head_;
      free_head_ = &node;
    }
  }
}

void Simulator::RunOneShot(EventNode* node) {
  node->state = NodeState::kRunning;
  --live_events_;
  ++executed_;
  // A single indirect call runs and destroys the callable; it may schedule
  // more events (growing the pool — nodes never move, so `node` stays
  // valid), but cannot recycle this node, which is in kRunning state.
  node->cb.InvokeAndDestroy();
  RecycleNode(node);
}

bool Simulator::RunHeapTop() {
  const HeapEntry top = HeapPopTop();
  EventNode* node = top.node;
  if (node->state == NodeState::kCancelled) {
    // Cancel() normally destroyed the callable already; a periodic
    // self-cancel deferred it to here.
    if (node->cb.engaged()) node->cb.Destroy();
    RecycleNode(node);
    return false;
  }
  now_ = TimePoint::FromNanos(top.at);
  ++executed_;
  if (node->period_ns > 0) {
    // Re-arm before running so the callback observes itself as pending and
    // may Cancel() its own timer. Same node, same generation, fresh seq:
    // FIFO order at the next fire time is "timer first, then anything the
    // callback schedules for that instant".
    HeapPush(HeapEntry{top.at + node->period_ns, next_seq_++, node});
    node->executing = true;
    node->cb.Invoke();
    node->executing = false;
    return true;
  }
  node->state = NodeState::kRunning;
  --live_events_;
  node->cb.InvokeAndDestroy();
  RecycleNode(node);
  return true;
}

bool Simulator::StepOne() {
  // Merge the now-ring with the heap by (time, seq). Fifo entries are
  // always at now_ <= heap top, so the heap wins only when its top is also
  // at now_ with an older seq (and may then be a periodic fire, which
  // RunHeapTop handles).
  if (fifo_count_ != 0) {
    const FifoEntry front = fifo_[fifo_head_ & (fifo_.size() - 1)];
    if (!heap_.empty() && heap_.front().at == now_.nanos() &&
        heap_.front().seq < front.seq) {
      return RunHeapTop();
    }
    (void)FifoPop();
    EventNode* node = front.node;
    if (node->state == NodeState::kCancelled) {
      // Fifo entries are one-shots, so Cancel() always destroyed eagerly.
      RecycleNode(node);
      return false;
    }
    // Fifo entries are always one-shots at the current clock: periodic
    // first fires and re-arms land strictly in the future, so they only
    // ever enter the heap.
    RunOneShot(node);
    return true;
  }
  return RunHeapTop();
}

std::int64_t Simulator::Run() {
  std::int64_t n = 0;
  while (!QueuesEmpty()) {
    if (StepOne()) ++n;
  }
  return n;
}

std::int64_t Simulator::RunUntil(TimePoint t) {
  PW_CHECK_GE(t.nanos(), now_.nanos());
  std::int64_t n = 0;
  while (!QueuesEmpty() && NextEventTime() <= t.nanos()) {
    if (StepOne()) ++n;
  }
  now_ = t;
  return n;
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (!QueuesEmpty()) {
    if (StepOne() && pred()) return true;
  }
  return false;
}

std::vector<std::string> Simulator::BlockedEntities() const {
  std::vector<std::string> out;
  for (const auto& probe : probes_) {
    std::string desc = probe();
    if (!desc.empty()) out.push_back(std::move(desc));
  }
  return out;
}

}  // namespace pw::sim
