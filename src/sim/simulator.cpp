#include "sim/simulator.h"

#include <algorithm>

namespace pw::sim {

Simulator::~Simulator() {
  // Destroy callbacks of events still queued (live or tombstoned) so
  // captured resources are released; pool chunks free themselves.
  for (const HeapEntry& e : heap_) {
    if (e.node->cb.engaged()) e.node->cb.Destroy();
  }
  for (std::size_t i = 0; i < fifo_count_; ++i) {
    EventNode* node = fifo_[(fifo_head_ + i) & (fifo_.size() - 1)];
    if (node->cb.engaged()) node->cb.Destroy();
  }
  for (const Bucket& b : wheel_) {
    for (std::size_t i = b.head; i < b.items.size(); ++i) {
      if (b.items[i]->cb.engaged()) b.items[i]->cb.Destroy();
    }
  }
}

void Simulator::WheelPush(std::int64_t at_ns, EventNode* node) {
  const std::size_t idx = static_cast<std::size_t>(at_ns) & kWheelMask;
  wheel_[idx].items.push_back(node);
  wheel_bits_[idx >> 6] |= 1ULL << (idx & 63);
  ++wheel_count_;
}

std::int64_t Simulator::WheelNextTime(std::size_t* idx) const {
  // Cyclic scan of the occupancy bitmap starting at the bucket for `now`.
  // wheel_count_ > 0 guarantees a set bit; the k == kWheelWords lap
  // re-reads the first word unmasked, covering bits behind the start.
  const std::size_t start = static_cast<std::size_t>(now_.nanos()) & kWheelMask;
  const std::size_t w0 = start >> 6;
  std::size_t found;
  const std::uint64_t first = wheel_bits_[w0] & (~0ULL << (start & 63));
  if (first != 0) {
    found = (w0 << 6) | static_cast<std::size_t>(__builtin_ctzll(first));
  } else {
    for (std::size_t k = 1;; ++k) {
      const std::size_t w = (w0 + k) & (kWheelWords - 1);
      if (wheel_bits_[w] != 0) {
        found = (w << 6) | static_cast<std::size_t>(__builtin_ctzll(wheel_bits_[w]));
        break;
      }
    }
  }
  *idx = found;
  // Cyclic distance from the start bucket == delay until the event; every
  // pending wheel entry is within one span of now (see header).
  const std::int64_t d =
      static_cast<std::int64_t>((found - start) & kWheelMask);
  return now_.nanos() + d;
}

bool Simulator::RunWheelBucket(std::size_t idx, std::int64_t at_ns) {
  Bucket& b = wheel_[idx];
  EventNode* node = b.items[b.head];
  ++b.head;
  if (b.head == b.items.size()) {
    b.head = 0;
    b.items.clear();  // keeps capacity for the bucket's next epoch
    wheel_bits_[idx >> 6] &= ~(1ULL << (idx & 63));
  }
  --wheel_count_;
  if (node->state == NodeState::kCancelled) {
    // Wheel entries are one-shots, so Cancel() destroyed the callable.
    RecycleNode(node);
    return false;
  }
  now_ = TimePoint::FromNanos(at_ns);
  RunOneShot(node);
  return true;
}

internal::EventNode* Simulator::AllocNode() {
  EventNode* node = free_head_;
  if (node != nullptr) {
    free_head_ = node->next_free;
    node->next_free = nullptr;
    return node;
  }
  if (chunk_used_ == kChunkSize) {
    chunks_.push_back(std::make_unique<Chunk>());
    chunk_used_ = 0;
  }
  return &chunks_.back()->nodes[chunk_used_++];
}

void Simulator::RecycleNode(EventNode* node) {
  node->state = NodeState::kFree;
  node->period_ns = 0;
  ++node->generation;  // stale-ify outstanding handles
  node->next_free = free_head_;
  free_head_ = node;
}

void Simulator::HeapPush(HeapEntry e) {
  if (heap_hole_) {
    // Steady-state fusion: the event being executed left a hole at the
    // root; this push fills it directly, replacing a pop-then-push
    // (sift-down of the old bottom entry + sift-up of the new one, plus
    // the vector size churn) with a single sift-down of the new entry.
    heap_hole_ = false;
    SiftDownFromRoot(e);
    return;
  }
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!Before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::SiftDownFromRoot(HeapEntry e) {
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::CloseHeapHole() {
  if (!heap_hole_) return;
  heap_hole_ = false;
  // Nothing was pushed while the root was consumed: excise it the classic
  // way, sifting the bottom entry down from the root.
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDownFromRoot(last);
}

void Simulator::FifoPush(FifoEntry e) {
  if (fifo_count_ == fifo_.size()) FifoGrow();
  fifo_[(fifo_head_ + fifo_count_) & (fifo_.size() - 1)] = e;
  ++fifo_count_;
}

void Simulator::FifoGrow() {
  const std::size_t old_cap = fifo_.size();
  const std::size_t new_cap = old_cap == 0 ? 64 : old_cap * 2;
  std::vector<FifoEntry> grown(new_cap);
  for (std::size_t i = 0; i < fifo_count_; ++i) {
    grown[i] = fifo_[(fifo_head_ + i) & (old_cap - 1)];
  }
  fifo_ = std::move(grown);
  fifo_head_ = 0;
}

bool Simulator::Cancel(EventHandle h) {
  if (!h.valid()) return false;
  EventNode* node = h.node_;
  if (node->generation != h.generation_ || node->state != NodeState::kArmed) {
    return false;
  }
  node->state = NodeState::kCancelled;
  --live_events_;
  // Destroy the callable eagerly: a cancelled watchdog's captures (often
  // shared_ptrs) must not stay alive until simulated time reaches the
  // original timestamp and the tombstone pops. The queue entry itself is
  // recycled lazily when popped. Exception: a periodic timer cancelling
  // itself from inside its own callback — destroying the callable would
  // pull the frame out from under the running lambda, so the tombstone
  // path destroys it instead.
  if (!node->executing) node->cb.Destroy();
  return true;
}

bool Simulator::IsPending(EventHandle h) const {
  return h.valid() && h.node_->generation == h.generation_ &&
         h.node_->state == NodeState::kArmed;
}

void Simulator::ReserveEvents(std::size_t n) {
  heap_.reserve(n);
  while (fifo_.size() < n) FifoGrow();
  // Pre-build pool chunks and put their nodes straight onto the free list.
  // The partially used tail of the current chunk (at most kChunkSize-1
  // nodes) is abandoned — AllocNode's fresh-allocation path only looks at
  // the last chunk, and correctness needs only that every free node is
  // reachable exactly once.
  chunks_.reserve(n / kChunkSize + 1);
  while (chunks_.size() * kChunkSize < n) {
    chunks_.push_back(std::make_unique<Chunk>());
    chunk_used_ = kChunkSize;
    for (EventNode& node : chunks_.back()->nodes) {
      node.next_free = free_head_;
      free_head_ = &node;
    }
  }
}

void Simulator::RunOneShot(EventNode* node) {
  node->state = NodeState::kRunning;
  --live_events_;
  ++executed_;
  // A single indirect call runs and destroys the callable; it may schedule
  // more events (growing the pool — nodes never move, so `node` stays
  // valid), but cannot recycle this node, which is in kRunning state.
  node->cb.InvokeAndDestroy();
  RecycleNode(node);
}

bool Simulator::RunHeapTop() {
  // Consume the root but leave its slot as a hole: if the event's callback
  // (or a periodic re-arm) pushes a new heap entry — the dominant
  // steady-state pattern — HeapPush fills the hole with one sift-down and
  // the excision below becomes a no-op. While the hole is open the root
  // entry is stale; it is never read (Cancel/IsPending key off node state,
  // and StepOne only inspects the heap between events).
  const HeapEntry top = heap_.front();
  heap_hole_ = true;
  EventNode* node = top.node;
  if (node->state == NodeState::kCancelled) {
    // Cancel() normally destroyed the callable already; a periodic
    // self-cancel deferred it to here.
    if (node->cb.engaged()) node->cb.Destroy();
    RecycleNode(node);
    CloseHeapHole();
    return false;
  }
  now_ = TimePoint::FromNanos(top.at);
  ++executed_;
  if (node->period_ns > 0) {
    // Re-arm before running so the callback observes itself as pending and
    // may Cancel() its own timer. Same node, same generation, fresh seq:
    // FIFO order at the next fire time is "timer first, then anything the
    // callback schedules for that instant". The re-arm fills the hole.
    node->seq = next_seq_++;
    HeapPush(HeapEntry{top.at + node->period_ns, node});
    node->executing = true;
    node->cb.Invoke();
    node->executing = false;
    return true;
  }
  node->state = NodeState::kRunning;
  --live_events_;
  node->cb.InvokeAndDestroy();
  RecycleNode(node);
  CloseHeapHole();
  return true;
}

bool Simulator::StepOne() {
  // Merge the now-ring, the wheel and the heap by (time, seq). Fifo
  // entries are always at now_ <= any wheel or heap entry, so those win
  // only when their earliest entry is also at now_ with an older seq (for
  // the heap that may be a periodic fire, which RunHeapTop handles).
  const std::int64_t now_ns = now_.nanos();
  if (fifo_count_ != 0) {
    const FifoEntry front = fifo_[fifo_head_ & (fifo_.size() - 1)];
    const std::size_t b = static_cast<std::size_t>(now_ns) & kWheelMask;
    if ((wheel_bits_[b >> 6] >> (b & 63)) & 1) {
      // A non-empty bucket for now's slot holds events at exactly now
      // (single-timestamp-per-bucket invariant), necessarily scheduled
      // before the clock got here, i.e. with older seqs.
      const Bucket& bk = wheel_[b];
      if (bk.items[bk.head]->seq < front->seq) {
        return RunWheelBucket(b, now_ns);
      }
    }
    if (!heap_.empty() && heap_.front().at == now_ns &&
        heap_.front().node->seq < front->seq) {
      return RunHeapTop();
    }
    (void)FifoPop();
    EventNode* node = front;
    if (node->state == NodeState::kCancelled) {
      // Fifo entries are one-shots, so Cancel() always destroyed eagerly.
      RecycleNode(node);
      return false;
    }
    // Fifo entries are always one-shots at the current clock: periodic
    // first fires and re-arms land strictly in the future, so they only
    // ever enter the heap.
    RunOneShot(node);
    return true;
  }
  if (wheel_count_ != 0) {
    std::size_t idx;
    const std::int64_t w_at = WheelNextTime(&idx);
    if (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      if (top.at < w_at ||
          (top.at == w_at &&
           top.node->seq < wheel_[idx].items[wheel_[idx].head]->seq)) {
        return RunHeapTop();
      }
    }
    return RunWheelBucket(idx, w_at);
  }
  return RunHeapTop();
}

std::int64_t Simulator::Run() {
  std::int64_t n = 0;
  while (!QueuesEmpty()) {
    if (StepOne()) ++n;
  }
  return n;
}

std::int64_t Simulator::RunUntil(TimePoint t) {
  PW_CHECK_GE(t.nanos(), now_.nanos());
  std::int64_t n = 0;
  while (!QueuesEmpty() && NextEventTime() <= t.nanos()) {
    if (StepOne()) ++n;
  }
  now_ = t;
  return n;
}

std::int64_t Simulator::RunUntilBefore(TimePoint t) {
  std::int64_t n = 0;
  while (!QueuesEmpty() && NextEventTime() < t.nanos()) {
    if (StepOne()) ++n;
  }
  return n;
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (!QueuesEmpty()) {
    if (StepOne() && pred()) return true;
  }
  return false;
}

bool Simulator::RunUntilBeforePredicate(TimePoint t,
                                        const std::function<bool()>& pred) {
  if (pred()) return true;
  while (!QueuesEmpty() && NextEventTime() < t.nanos()) {
    if (StepOne() && pred()) return true;
  }
  return false;
}

std::vector<std::string> Simulator::BlockedEntities() const {
  std::vector<std::string> out;
  for (const auto& probe : probes_) {
    std::string desc = probe();
    if (!desc.empty()) out.push_back(std::move(desc));
  }
  return out;
}

}  // namespace pw::sim
