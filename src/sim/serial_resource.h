// SerialResource models an execution resource that processes work items one
// at a time in FIFO order: a host CPU thread, an RPC dispatch thread, a DMA
// engine. Work submitted while the resource is busy queues behind earlier
// work.
//
// This is the mechanism behind the paper's single-controller overheads: the
// coordinator's dispatch thread is a SerialResource, so sending one gang-
// dispatch message per device executor serializes (~17 µs each in our
// calibration), which is exactly what Figure 6 measures (2048 devices ×
// per-message cost ≈ 35 ms of host-side work per step).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/units.h"
#include "sim/future.h"
#include "sim/simulator.h"

namespace pw::sim {

class SerialResource {
 public:
  SerialResource(Simulator* sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}

  SerialResource(const SerialResource&) = delete;
  SerialResource& operator=(const SerialResource&) = delete;

  // Submits a work item costing `cost` of this resource's time. `fn` runs
  // when the work *completes* (at the timestamp the resource frees up).
  // Returns the completion time.
  TimePoint Submit(Duration cost, std::function<void()> fn) {
    const TimePoint start = std::max(sim_->now(), busy_until_);
    const TimePoint done = start + cost;
    busy_until_ = done;
    busy_accum_ += cost;
    ++jobs_;
    sim_->ScheduleAt(done, std::move(fn));
    return done;
  }

  // Submits work with no completion callback.
  TimePoint Submit(Duration cost) {
    return Submit(cost, [] {});
  }

  // Future-returning flavor for coroutine code.
  SimFuture<Unit> SubmitAsync(Duration cost) {
    SimPromise<Unit> p(sim_);
    Submit(cost, [p]() mutable { p.Set(Unit{}); });
    return p.future();
  }

  TimePoint busy_until() const { return busy_until_; }
  bool idle() const { return busy_until_ <= sim_->now(); }
  Duration total_busy() const { return busy_accum_; }
  std::int64_t jobs_processed() const { return jobs_; }
  const std::string& name() const { return name_; }

 private:
  Simulator* sim_;
  std::string name_;
  TimePoint busy_until_;
  Duration busy_accum_;
  std::int64_t jobs_ = 0;
};

}  // namespace pw::sim
