// Deterministic single-threaded discrete-event simulator.
//
// All Pathways components (clients, resource manager, schedulers, executors,
// devices, networks) interact only through events scheduled here, so a run
// is bit-reproducible: events at equal timestamps execute in scheduling
// order (FIFO tie-break via sequence numbers).
//
// Engine internals (the repo's hottest path):
//   * Event callbacks live in pool nodes allocated from stable chunks and
//     recycled through a free list; a callable of up to
//     PooledCallback::kInlineBytes is constructed in place in its node, so
//     the steady-state schedule/fire cycle performs no heap allocation.
//   * The priority queue is a 4-ary heap of 24-byte plain-data entries
//     {time, seq, node*}; sifting copies trivial entries only, never the
//     callbacks, and nodes never move once constructed. Popping leaves a
//     hole at the root that a push from inside the event's own callback —
//     the steady-state churn pattern — fills with a single sift-down,
//     fusing the pop/push pair into one heap operation.
//   * Zero-delay events — the dominant pattern: every future Then(),
//     WhenAll() completion and device wakeup fires "now" — skip the heap
//     entirely and go through an O(1) FIFO ring holding events whose
//     timestamp equals the current clock. The ring and the heap merge by
//     (time, seq), so the global FIFO-at-equal-timestamp order is exactly
//     that of a single queue.
//   * Near-horizon one-shots (0 < at - now < kWheelSpanNs) bypass the heap
//     through a timing wheel of 1ns buckets — O(1) push/pop instead of an
//     O(log n) sift, the winning structure for steady-state churn (device
//     hops, wire latencies, backoffs all land within a microsecond). All
//     pending wheel events live inside one span-wide window, so a bucket
//     holds exactly one timestamp and its append order IS seq order; the
//     wheel, ring and heap merge by (time, seq) like a single queue.
//
// The simulator deliberately knows nothing about the entities it drives.
// Higher layers register "blocked entity" probes so that quiescence with
// blocked entities can be reported as a deadlock (the situation the paper's
// gang scheduler exists to prevent).
//
// Typical use:
//
//   sim::Simulator sim;
//   sim.Schedule(Duration::Micros(10), [&] { /* fires at t=10us */ });
//   sim.Run();                       // drain the event queue to quiescence
//   TimePoint end = sim.now();       // simulated time, not wall clock
//   if (sim.Deadlocked()) { ... }    // quiescent but entities still blocked
//
// Cancellable events and periodic timers:
//
//   sim::EventHandle h = sim.Schedule(Duration::Millis(5), [&] { ... });
//   sim.Cancel(h);                   // true: the event will not fire
//
//   // Heartbeat every 100us, starting at now()+100us. A periodic event
//   // keeps the queue non-empty, so drive the sim with RunUntil/RunFor
//   // (Run() would spin forever) and Cancel() the timer when done.
//   sim::EventHandle hb = sim.SchedulePeriodic(Duration::Micros(100),
//                                              [&] { Poll(); });
//   sim.RunFor(Duration::Millis(1));
//   sim.Cancel(hb);
//
// Handles are generation-checked: once a one-shot event fires or is
// cancelled, its handle goes stale and Cancel()/IsPending() return false
// even after the pool recycles the node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/units.h"

namespace pw::sim {

class Simulator;

namespace internal {

struct EventNode;

// Small-buffer-optimized storage for a `void()` callable inside a pool
// node. Nodes never move (pool chunks are stable), so the callable needs
// only construct / invoke / destroy — no move or copy support — and
// callables up to kInlineBytes incur no heap allocation at all. Larger
// callables fall back to a single owned heap object.
class PooledCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  PooledCallback() = default;
  PooledCallback(const PooledCallback&) = delete;
  PooledCallback& operator=(const PooledCallback&) = delete;

  template <typename Fn>
  void Emplace(Fn&& fn) {
    using F = std::decay_t<Fn>;
    static_assert(std::is_invocable_v<F&>, "callback must be callable as fn()");
    if constexpr (sizeof(F) <= kInlineBytes &&
                  alignof(F) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) F(std::forward<Fn>(fn));
      ops_ = OpsFor<F, /*kInline=*/true>();
    } else {
      ::new (static_cast<void*>(storage_)) F*(new F(std::forward<Fn>(fn)));
      ops_ = OpsFor<F, /*kInline=*/false>();
    }
  }

  // May be called repeatedly (periodic timers re-invoke the same callable).
  void Invoke() { ops_->invoke(storage_); }

  void Destroy() {
    ops_->destroy(storage_);
    ops_ = nullptr;
  }

  // One-shot fast path: a single indirect call that runs the callable and
  // then destroys it (the callable outlives its own invocation).
  void InvokeAndDestroy() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(storage_);
  }

  bool engaged() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
    void (*invoke_destroy)(void*);
  };

  template <typename F, bool kInline>
  static const Ops* OpsFor() {
    static constexpr Ops ops = {
        [](void* p) {
          if constexpr (kInline) {
            (*std::launder(reinterpret_cast<F*>(p)))();
          } else {
            (**std::launder(reinterpret_cast<F**>(p)))();
          }
        },
        [](void* p) {
          if constexpr (kInline) {
            std::launder(reinterpret_cast<F*>(p))->~F();
          } else {
            delete *std::launder(reinterpret_cast<F**>(p));
          }
        },
        [](void* p) {
          if constexpr (kInline) {
            F* f = std::launder(reinterpret_cast<F*>(p));
            (*f)();
            f->~F();
          } else {
            F* f = *std::launder(reinterpret_cast<F**>(p));
            (*f)();
            delete f;
          }
        }};
    return &ops;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

enum class NodeState : std::uint8_t {
  kFree,       // on the free list
  kArmed,      // queued, will fire
  kCancelled,  // queued, will be skipped and recycled
  kRunning,    // one-shot currently executing (no longer cancellable)
};

// Pool node: stable address for the callback; queues refer to nodes by
// pointer only.
struct EventNode {
  PooledCallback cb;
  std::int64_t period_ns = 0;  // > 0 for periodic timers
  // FIFO tie-break among equal timestamps. Kept in the node (not the queue
  // entries) so heap entries stay 16 bytes; a node has at most one queue
  // entry at a time, so the value is unambiguous.
  std::uint64_t seq = 0;
  EventNode* next_free = nullptr;
  std::uint32_t generation = 0;
  NodeState state = NodeState::kFree;
  // True while a periodic fire is inside cb.Invoke(); a self-Cancel() must
  // then defer destroying the callable until the tombstone pops.
  bool executing = false;
};

}  // namespace internal

// Identifies a scheduled event (one-shot or periodic timer). Handles are
// cheap value types; a default-constructed handle is invalid. A handle for
// a fired/cancelled one-shot event is stale: Cancel() and IsPending()
// return false for it.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return node_ != nullptr; }

 private:
  friend class Simulator;
  EventHandle(internal::EventNode* node, std::uint32_t gen)
      : node_(node), generation_(gen) {}

  internal::EventNode* node_ = nullptr;
  std::uint32_t generation_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  // Schedules fn to run at now() + delay. delay must be >= 0.
  template <typename Fn>
  EventHandle Schedule(Duration delay, Fn&& fn) {
    return ScheduleAt(now_ + delay, std::forward<Fn>(fn));
  }

  // Schedules fn at an absolute time >= now().
  template <typename Fn>
  EventHandle ScheduleAt(TimePoint at, Fn&& fn) {
    PW_CHECK_GE(at.nanos(), now_.nanos()) << "cannot schedule in the past";
    return ArmEvent(at.nanos(), /*period_ns=*/0, std::forward<Fn>(fn));
  }

  // Schedules fn to run every `period`, first at now() + period. The
  // callable is stored once and re-fired without reallocation. The timer
  // re-arms *before* its callback runs, so events the callback schedules at
  // exactly the next fire time run after that next fire (FIFO order).
  // Periodic events count as pending forever; Cancel() to stop them.
  template <typename Fn>
  EventHandle SchedulePeriodic(Duration period, Fn&& fn) {
    PW_CHECK_GT(period.nanos(), 0) << "periodic timer period must be > 0";
    return ArmEvent(now_.nanos() + period.nanos(), period.nanos(),
                    std::forward<Fn>(fn));
  }

  // Cancels a pending event or periodic timer. Returns true if the event
  // was pending and is now guaranteed not to fire (again); false if the
  // handle is invalid, stale, or the one-shot event already fired.
  bool Cancel(EventHandle h);

  // True while the event identified by `h` is still scheduled to fire.
  bool IsPending(EventHandle h) const;

  // Runs events until the queue is empty. Returns the number of events run.
  // Note: an uncancelled periodic timer keeps the queue non-empty, so Run()
  // only terminates once all periodic timers are cancelled.
  std::int64_t Run();

  // Runs events with timestamp <= t; leaves later events queued and advances
  // the clock to exactly t. Returns the number of events run.
  std::int64_t RunUntil(TimePoint t);

  // Convenience: RunUntil(now() + d).
  std::int64_t RunFor(Duration d) { return RunUntil(now_ + d); }

  // Runs events with timestamp strictly < t; leaves later events queued and
  // leaves the clock at the last executed event (unlike RunUntil, the clock
  // is NOT advanced to t). This is the window-execution primitive for the
  // partitioned engine (sim/partition.h): slicing a run into lookahead
  // windows must not move the clock between events, or a windowed run would
  // not be bit-identical to an unsliced one. Returns the number of events
  // run.
  std::int64_t RunUntilBefore(TimePoint t);

  // Runs until `pred()` becomes true (checked after every event) or the
  // queue empties. Returns true if the predicate was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  // RunUntilBefore bounded by a predicate: only events with timestamp < t
  // are eligible, pred is checked before the first event and after every
  // event. Returns true iff the predicate was satisfied.
  bool RunUntilBeforePredicate(TimePoint t, const std::function<bool()>& pred);

  // True while any entry (including cancelled tombstones) is queued.
  bool HasQueued() const { return !QueuesEmpty(); }

  // Earliest queued timestamp, or INT64_MAX when nothing is queued. A
  // cancelled tombstone counts toward the bound — that only tightens the
  // partitioned engine's lower-bound-timestamp estimate (the window loop
  // drains tombstones like any other entry).
  std::int64_t NextQueuedTimeNs() const {
    return QueuesEmpty() ? std::numeric_limits<std::int64_t>::max()
                         : NextEventTime();
  }

  bool empty() const { return live_events_ == 0; }
  std::size_t pending_events() const { return live_events_; }
  std::int64_t events_executed() const { return executed_; }

  // Pre-sizes internal storage for at least `n` simultaneously pending
  // events (benchmarks use this to take pool growth off the timed path).
  void ReserveEvents(std::size_t n);

  // --- Blocked-entity probes (deadlock detection support) ---
  //
  // A probe returns a human-readable description of an entity that is
  // currently blocked waiting for an external stimulus (e.g. a device parked
  // at a collective rendezvous), or an empty string if not blocked. After
  // Run() returns with blocked entities, the system has deadlocked.
  using BlockedProbe = std::function<std::string()>;
  void RegisterBlockedProbe(BlockedProbe probe) {
    probes_.push_back(std::move(probe));
  }

  // Descriptions of all currently blocked entities (empty => none).
  std::vector<std::string> BlockedEntities() const;

  // True if the event queue is empty but some entity is still blocked.
  bool Deadlocked() const { return empty() && !BlockedEntities().empty(); }

 private:
  using EventNode = internal::EventNode;
  using NodeState = internal::NodeState;

  // 16-byte trivially copyable heap element; (at, node->seq) is the
  // priority. Timestamps are compared first and are almost never equal, so
  // the node deref for the FIFO tie-break stays off the sift fast path.
  struct HeapEntry {
    std::int64_t at;
    EventNode* node;
  };
  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    return a.at < b.at || (a.at == b.at && a.node->seq < b.node->seq);
  }

  // Ring element for events at exactly now(): `at` is implicit, seq lives
  // in the node.
  using FifoEntry = EventNode*;

  static constexpr std::uint32_t kChunkSize = 256;  // nodes per chunk
  struct Chunk {
    EventNode nodes[kChunkSize];
  };

  template <typename Fn>
  EventHandle ArmEvent(std::int64_t at_ns, std::int64_t period_ns, Fn&& fn) {
    EventNode* node = AllocNode();
    node->cb.Emplace(std::forward<Fn>(fn));
    // Invariant: nodes come off the free list with period_ns == 0 (default
    // at construction, reset on recycle), so the one-shot path skips the
    // store.
    if (period_ns > 0) node->period_ns = period_ns;
    node->state = NodeState::kArmed;
    node->seq = next_seq_++;
    const std::int64_t delta = at_ns - now_.nanos();
    if (delta == 0) {
      FifoPush(node);  // zero-delay fast path: no heap sift
    } else if (delta < kWheelSpanNs && period_ns == 0) {
      WheelPush(at_ns, node);  // near-horizon fast path: O(1) bucket append
    } else {
      // Far events and periodic timers (whose re-arm path lives in
      // RunHeapTop) take the general-purpose heap.
      HeapPush(HeapEntry{at_ns, node});
    }
    ++live_events_;
    return EventHandle(node, node->generation);
  }

  EventNode* AllocNode();
  void RecycleNode(EventNode* node);

  // Heap pop/push are fused for the steady-state schedule-from-callback
  // pattern: RunHeapTop consumes the root and leaves a hole (heap_hole_);
  // the next HeapPush fills it with a single sift-down, and CloseHeapHole
  // excises it if nothing was pushed by the time the event finished.
  void HeapPush(HeapEntry e);
  void SiftDownFromRoot(HeapEntry e);
  void CloseHeapHole();

  // --- Timing wheel (near-horizon one-shots) ---
  //
  // One bucket per nanosecond over a kWheelSpanNs window. Every pending
  // wheel event satisfies now <= at < sched_now + span <= now + span, so
  // two events in the same bucket would have to differ by a multiple of
  // the span yet both lie inside one span-wide window: impossible. Hence a
  // non-empty bucket holds exactly one timestamp, and because seq numbers
  // are handed out in execution order, bucket append order is seq order —
  // draining front-to-back preserves the global FIFO tie-break.
  static constexpr std::int64_t kWheelSpanNs = 1024;
  static constexpr std::size_t kWheelMask = kWheelSpanNs - 1;
  static constexpr std::size_t kWheelWords = kWheelSpanNs / 64;
  struct Bucket {
    std::vector<EventNode*> items;
    std::size_t head = 0;  // drain cursor; capacity is kept across reuse
  };
  void WheelPush(std::int64_t at_ns, EventNode* node);
  // Timestamp and bucket index of the earliest wheel event.
  // Precondition: wheel_count_ > 0.
  std::int64_t WheelNextTime(std::size_t* idx) const;
  // Pops the front of bucket `idx` (whose timestamp is at_ns) and runs it
  // unless it is a cancelled tombstone. Returns true iff an event ran.
  bool RunWheelBucket(std::size_t idx, std::int64_t at_ns);

  void FifoPush(FifoEntry e);
  void FifoGrow();
  FifoEntry FifoPop() {
    FifoEntry e = fifo_[fifo_head_ & (fifo_.size() - 1)];
    ++fifo_head_;
    --fifo_count_;
    return e;
  }

  // Pops the globally next queued entry (fifo merged with heap by
  // (time, seq)) and, if it is a live event, advances the clock and runs
  // it. Returns true iff an event ran (false for cancelled tombstones).
  // Precondition: !QueuesEmpty().
  bool StepOne();
  // Pops and processes the heap top (cancelled / periodic / one-shot).
  bool RunHeapTop();

  bool QueuesEmpty() const {
    return fifo_count_ == 0 && wheel_count_ == 0 && heap_.empty();
  }
  // Earliest queued timestamp; precondition: !QueuesEmpty(). Fifo entries
  // are always at now_, which is <= any wheel or heap entry.
  std::int64_t NextEventTime() const {
    if (fifo_count_ != 0) return now_.nanos();
    std::int64_t t = heap_.empty() ? std::numeric_limits<std::int64_t>::max()
                                   : heap_.front().at;
    if (wheel_count_ != 0) {
      std::size_t idx;
      const std::int64_t w = WheelNextTime(&idx);
      if (w < t) t = w;
    }
    return t;
  }

  void RunOneShot(EventNode* node);

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
  std::size_t live_events_ = 0;

  std::vector<HeapEntry> heap_;
  // True while the root entry has been consumed by RunHeapTop but not yet
  // replaced (see HeapPush) or excised (see CloseHeapHole). Always false
  // between events.
  bool heap_hole_ = false;

  std::vector<Bucket> wheel_{static_cast<std::size_t>(kWheelSpanNs)};
  std::uint64_t wheel_bits_[kWheelWords] = {};  // bucket-occupancy bitmap
  std::size_t wheel_count_ = 0;  // pending wheel entries incl. tombstones
  // Power-of-two ring of events at exactly now().
  std::vector<FifoEntry> fifo_;
  std::size_t fifo_head_ = 0;
  std::size_t fifo_count_ = 0;

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::uint32_t chunk_used_ = kChunkSize;  // slots used in the last chunk
  EventNode* free_head_ = nullptr;

  std::vector<BlockedProbe> probes_;
};

}  // namespace pw::sim
