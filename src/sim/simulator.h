// Deterministic single-threaded discrete-event simulator.
//
// All Pathways components (clients, resource manager, schedulers, executors,
// devices, networks) interact only through events scheduled here, so a run
// is bit-reproducible: events at equal timestamps execute in scheduling
// order (FIFO tie-break via sequence numbers).
//
// The simulator deliberately knows nothing about the entities it drives.
// Higher layers register "blocked entity" probes so that quiescence with
// blocked entities can be reported as a deadlock (the situation the paper's
// gang scheduler exists to prevent).
//
// Typical use:
//
//   sim::Simulator sim;
//   sim.Schedule(Duration::Micros(10), [&] { /* fires at t=10us */ });
//   sim.Run();                       // drain the event queue to quiescence
//   TimePoint end = sim.now();       // simulated time, not wall clock
//   if (sim.Deadlocked()) { ... }    // quiescent but entities still blocked
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/units.h"

namespace pw::sim {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  // Schedules fn to run at now() + delay. delay must be >= 0.
  void Schedule(Duration delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules fn at an absolute time >= now().
  void ScheduleAt(TimePoint at, std::function<void()> fn) {
    PW_CHECK_GE(at.nanos(), now_.nanos()) << "cannot schedule in the past";
    events_.push(Event{at, next_seq_++, std::move(fn)});
  }

  // Runs events until the queue is empty. Returns the number of events run.
  std::int64_t Run();

  // Runs events with timestamp <= t; leaves later events queued and advances
  // the clock to exactly t. Returns the number of events run.
  std::int64_t RunUntil(TimePoint t);

  // Convenience: RunUntil(now() + d).
  std::int64_t RunFor(Duration d) { return RunUntil(now_ + d); }

  // Runs until `pred()` becomes true (checked after every event) or the
  // queue empties. Returns true if the predicate was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  bool empty() const { return events_.empty(); }
  std::size_t pending_events() const { return events_.size(); }
  std::int64_t events_executed() const { return executed_; }

  // --- Blocked-entity probes (deadlock detection support) ---
  //
  // A probe returns a human-readable description of an entity that is
  // currently blocked waiting for an external stimulus (e.g. a device parked
  // at a collective rendezvous), or an empty string if not blocked. After
  // Run() returns with blocked entities, the system has deadlocked.
  using BlockedProbe = std::function<std::string()>;
  void RegisterBlockedProbe(BlockedProbe probe) {
    probes_.push_back(std::move(probe));
  }

  // Descriptions of all currently blocked entities (empty => none).
  std::vector<std::string> BlockedEntities() const;

  // True if the event queue is empty but some entity is still blocked.
  bool Deadlocked() const { return empty() && !BlockedEntities().empty(); }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return b.at < a.at;
      return b.seq < a.seq;  // FIFO among equal timestamps
    }
  };

  void Step();

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::vector<BlockedProbe> probes_;
};

}  // namespace pw::sim
