// Conservative parallel discrete-event simulation: logical processes on a
// thread pool, synchronized by lookahead windows.
//
// A PartitionedSimulator owns K independent sim::Simulator instances — the
// logical processes (LPs). Each LP keeps the full pooled-heap + timing-wheel
// engine (simulator.h) for its own event queue; the partitioned layer adds
// only the synchronization protocol and a timestamped cross-LP message path.
// The intended mapping (hw/partitioned_cluster.h) is one island per LP, with
// LP 0 doubling as the control LP that hosts the Pathways control plane.
//
// Protocol: windowed lower-bound-timestamp (LBTS) rounds, a conservative
// scheme in the YAWNS family. All cross-LP interaction carries at least
// `lookahead` of simulated latency — in this codebase that bound is physical:
// DcnFabric's minimum cross-island latency (DcnParams::latency, exposed as
// DcnFabric::MinCrossIslandLatency()), since islands only ever interact
// through the DCN. Each round:
//
//   1. Deliver pending cross-LP messages (sorted; see "Determinism" below)
//      into their destination LPs' queues.
//   2. Snapshot N_i = each LP's earliest queued timestamp. Each LP may then
//      safely execute every event with timestamp strictly below
//
//        LBTS_i = min over j != i of N_j + lookahead
//
//      because any message a peer j could still emit is sent by an event at
//      time >= N_j and delivered >= N_j + lookahead. An idle peer
//      (N_j = +inf) never constrains the window — in particular a run whose
//      events all live on one LP executes in a single unbounded window,
//      which is why the serial golden scenarios are reproduced exactly (see
//      tests/sim_determinism_test.cpp).
//   3. Execute the per-LP windows on the worker pool. LPs share no mutable
//      state, so any LP->thread assignment yields the same result; cross-LP
//      sends buffer into the sending LP's private outbox.
//   4. Barrier; collected outboxes become step 1 of the next round.
//
// The LP holding the minimum N_i always has LBTS_i > N_i (lookahead > 0),
// so every round makes progress and the protocol cannot livelock.
//
// Determinism: runs are bit-identical across thread counts (and across
// machines). Within a window an LP is an ordinary serial simulator; across
// windows the only ordering freedom is message injection, which is resolved
// by sorting each batch by (delivery time, source LP, per-source sequence)
// and injecting on the coordinator thread — injection order assigns the
// destination's FIFO tie-break seqs, so equal-timestamp merges are fixed by
// that sort key, never by thread scheduling. docs/PARALLEL.md states the
// full rules.
//
// Typical use:
//
//   sim::PartitionedSimulator part({.num_lps = 8, .threads = 4,
//                                   .lookahead = dcn.MinCrossIslandLatency()});
//   BuildIsland(&part.lp(i), ...);   // per-LP state, island i
//   part.SendAt(i, j, t, [fn]);      // cross-LP message, t >= now_i + lookahead
//   part.Run();
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/logging.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace pw::sim {

class PartitionedSimulator {
 public:
  struct Options {
    int num_lps = 1;
    // Worker threads for window execution; 0 = hardware_concurrency, capped
    // at num_lps. 1 runs windows inline on the calling thread (no pool).
    int threads = 1;
    // Minimum cross-LP latency. Every SendAt must be >= lookahead in the
    // sender's future. Must be > 0 when num_lps > 1; derive it from
    // net::DcnFabric::MinCrossIslandLatency() when LPs are islands.
    Duration lookahead = Duration::Micros(20);
  };

  struct Stats {
    std::int64_t rounds = 0;              // LBTS rounds executed
    std::int64_t messages_delivered = 0;  // cross-LP messages injected
  };

  explicit PartitionedSimulator(const Options& opts);
  ~PartitionedSimulator();

  PartitionedSimulator(const PartitionedSimulator&) = delete;
  PartitionedSimulator& operator=(const PartitionedSimulator&) = delete;

  int num_lps() const { return static_cast<int>(lps_.size()); }
  int threads() const { return threads_; }
  Duration lookahead() const { return lookahead_; }

  Simulator& lp(int i) { return *lps_[static_cast<std::size_t>(i)]; }
  const Simulator& lp(int i) const { return *lps_[static_cast<std::size_t>(i)]; }

  // Per-LP scratch arena for trivially-destructible workload records
  // (shard/step bookkeeping and the like). One arena per LP means no shared
  // allocator lock on the hot path; only touch arena(i) from events
  // executing on LP i, and Reset() it only between runs.
  common::Arena& arena(int i) {
    return *arenas_[static_cast<std::size_t>(i)];
  }

  // Schedules fn on LP `dst` at absolute time `at`. When src != dst, `at`
  // must be at least lookahead past LP src's clock — the conservative bound
  // that makes windows safe. Callable from inside an event executing on LP
  // src (the common case) or from the coordinator between runs (setup).
  // src == dst degenerates to a plain ScheduleAt on that LP.
  template <typename Fn>
  void SendAt(int src, int dst, TimePoint at, Fn&& fn) {
    if (src == dst) {
      lp(src).ScheduleAt(at, std::forward<Fn>(fn));
      return;
    }
    PW_CHECK_GE(at.nanos(), lp(src).now().nanos() + lookahead_.nanos())
        << "cross-LP send below the lookahead bound (src=" << src
        << " dst=" << dst << ")";
    Outbox& box = outboxes_[static_cast<std::size_t>(src)];
    box.messages.push_back(Message{at.nanos(), src, dst, box.next_seq++,
                                   std::function<void()>(std::forward<Fn>(fn))});
  }

  // Drains every LP to quiescence. Returns events executed (all LPs).
  std::int64_t Run();

  // Runs until `pred()` — a predicate over LP 0 (control LP) state — becomes
  // true or everything quiesces. Parity with Simulator::RunUntilPredicate:
  // the predicate is evaluated before the first event and after every LP-0
  // event, so a driver alternating RunUntilPredicate with new submissions
  // observes the exact clocks the serial engine would. Peer LPs may have
  // advanced up to their window ends when this returns; undelivered
  // messages stay pending for the next Run*/drain call.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  // Runs all events with timestamp <= t and advances every LP's clock to
  // exactly t (mirrors Simulator::RunUntil). Returns events executed.
  std::int64_t RunUntil(TimePoint t);

  std::int64_t TotalEventsExecuted() const;
  // Max LP clock — the partitioned analogue of Simulator::now().
  TimePoint MaxNow() const;

  bool AllEmpty() const;   // no queued events on any LP
  bool MessagesPending() const;  // undelivered cross-LP messages

  // Deadlock = quiescent (no events anywhere, no in-flight messages) with
  // some entity still blocked on any LP.
  bool Deadlocked() const;
  std::vector<std::string> BlockedEntities() const;

  const Stats& stats() const { return stats_; }

 private:
  struct Message {
    std::int64_t at_ns;
    int src;
    int dst;
    std::uint64_t seq;  // per-source send counter: FIFO tie-break
    std::function<void()> fn;
  };
  struct Outbox {
    std::vector<Message> messages;
    std::uint64_t next_seq = 0;
  };
  // One LP's slice of a round: run events strictly below w_end_ns.
  struct Job {
    int lp;
    std::int64_t w_end_ns;
  };

  static constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

  // Moves every outbox into the pending batch, sorts by (time, src, seq)
  // and injects into destination LPs. Coordinator thread only.
  void DeliverPending();
  // Snapshot of per-LP earliest timestamps; kInf for an empty LP.
  void SnapshotNextTimes(std::vector<std::int64_t>* n) const;
  // LBTS_i = min_{j != i} N_j + lookahead (kInf when unconstrained).
  std::int64_t WindowEnd(const std::vector<std::int64_t>& n, int i) const;
  // Runs `jobs` on the pool (and the calling thread) and waits for all.
  void ExecuteJobs(const std::vector<Job>& jobs);
  void WorkerLoop();
  void EnsureWorkers();

  Duration lookahead_;
  int threads_;
  std::vector<std::unique_ptr<Simulator>> lps_;
  std::vector<std::unique_ptr<common::Arena>> arenas_;  // parallel to lps_
  std::vector<Outbox> outboxes_;
  std::vector<Message> pending_;  // delivered at the top of the next round
  Stats stats_;

  // Worker pool (spawned lazily on the first multi-threaded round).
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Job> round_jobs_;
  std::size_t next_job_ = 0;
  std::size_t jobs_outstanding_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pw::sim
