// Cluster topology: islands of devices with private ICI interconnects,
// hosts with local devices, all hosts on a shared DCN fabric (paper Fig. 3).
//
// Provides the paper's evaluation configurations:
//   Config A: one island, 4 TPUs/host, up to 512 hosts (2048 TPUs).
//   Config B: one island, 8 TPUs/host, up to 64 hosts (512 TPUs).
//   Config C: four islands, each 4 hosts x 8 TPUs (32 TPUs/island).
//   GpuVm:    N single-GPU hosts connected only by DCN (Ray baseline).
//
// Typical use:
//
//   sim::Simulator sim;
//   auto cluster = hw::Cluster::ConfigB(&sim, /*hosts=*/16);  // 128 TPUs
//   hw::Island& island = cluster->island(0);
//   auto done = island.Transfer(DeviceId(0), DeviceId(1), MiB(64));
//   done.Then([&](sim::Unit) { /* data landed on device 1 */ });
//   sim.Run();
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "hw/device.h"
#include "hw/host.h"
#include "hw/system_params.h"
#include "net/collective_model.h"
#include "net/dcn.h"
#include "net/flow.h"
#include "net/link.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace pw::hw {

// An island: a set of devices joined by a private high-bandwidth
// interconnect over which collectives and point-to-point transfers run
// without touching host memory or the DCN.
//
// Two ICI fidelity levels (SystemParams::ici_flow, docs/NETWORK.md):
//   * Abstract (default): per-device egress Links for point-to-point,
//     analytic CollectiveModel for collectives.
//   * Flow-level torus: devices form a 2D/3D torus; transfers become flows
//     on dimension-ordered routes with max-min fair link sharing, and
//     collectives are priced by FlowCollectiveModel over the same links
//     (ring vs tree all-reduce chosen by size).
class Island {
 public:
  Island(sim::Simulator* sim, IslandId id, const SystemParams& params);

  IslandId id() const { return id_; }
  const std::vector<Device*>& devices() const { return devices_; }
  const std::vector<Host*>& hosts() const { return hosts_; }
  const net::CollectiveModel& collectives() const { return *collective_model_; }

  // Device-to-device transfer over ICI. Abstract mode serializes on the
  // source device's egress link; flow mode contends on the torus route.
  // Completion future fires when the data lands in the destination buffers.
  sim::SimFuture<sim::Unit> Transfer(DeviceId src, DeviceId dst, Bytes bytes);

  Bytes ici_bytes_transferred() const { return ici_bytes_; }

  // Flow-level ICI introspection and fault surface (null in abstract mode).
  // To degrade one torus edge, SetLinkScale on ici_topology() and then call
  // ici_flow_network()->OnCapacityChanged(); the collective model reprices
  // itself via the topology generation.
  net::Topology* ici_topology() { return ici_topo_.get(); }
  const net::TorusTopology* ici_torus() const { return ici_torus_.get(); }
  net::FlowNetwork* ici_flow_network() { return ici_flows_.get(); }

 private:
  friend class Cluster;
  void AddDevice(Device* d);
  void AddHost(Host* h) { hosts_.push_back(h); }
  // Called by Cluster once all devices exist: builds the torus + flow
  // engine and swaps in the FlowCollectiveModel when ici_flow.enabled.
  void Finalize();

  sim::Simulator* sim_;
  IslandId id_;
  const SystemParams& params_;
  std::unique_ptr<net::CollectiveModel> collective_model_;
  std::vector<Device*> devices_;
  std::vector<Host*> hosts_;
  std::vector<std::unique_ptr<net::Link>> egress_;  // parallel to devices_
  std::unique_ptr<net::Topology> ici_topo_;
  std::unique_ptr<net::TorusTopology> ici_torus_;
  std::unique_ptr<net::FlowNetwork> ici_flows_;
  Bytes ici_bytes_ = 0;
};

class Cluster {
 public:
  // Uniform topology: `islands` islands, each with `hosts_per_island` hosts
  // carrying `devices_per_host` devices.
  Cluster(sim::Simulator* sim, const SystemParams& params, int islands,
          int hosts_per_island, int devices_per_host);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Paper evaluation configurations.
  static std::unique_ptr<Cluster> ConfigA(sim::Simulator* sim, int hosts,
                                          SystemParams params = SystemParams::TpuDefault());
  static std::unique_ptr<Cluster> ConfigB(sim::Simulator* sim, int hosts,
                                          SystemParams params = SystemParams::TpuDefault());
  static std::unique_ptr<Cluster> ConfigC(sim::Simulator* sim,
                                          SystemParams params = SystemParams::TpuDefault());
  static std::unique_ptr<Cluster> GpuVm(sim::Simulator* sim, int hosts,
                                        SystemParams params = SystemParams::GpuVmDefault());

  sim::Simulator& simulator() { return *sim_; }
  const SystemParams& params() const { return params_; }
  net::DcnFabric& dcn() { return dcn_; }
  sim::TraceRecorder& trace() { return trace_; }

  int num_islands() const { return static_cast<int>(islands_.size()); }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  int num_devices() const { return static_cast<int>(devices_.size()); }

  Island& island(int i) { return *islands_.at(static_cast<std::size_t>(i)); }
  Host& host(int i) { return *hosts_.at(static_cast<std::size_t>(i)); }
  Device& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }

  Device& device(DeviceId id) { return *devices_.at(static_cast<std::size_t>(id.value())); }
  Host& host(HostId id) { return *hosts_.at(static_cast<std::size_t>(id.value())); }

  // Host that owns a given device.
  Host& host_of(DeviceId id) {
    return *host_of_.at(static_cast<std::size_t>(id.value()));
  }
  Island& island_of(DeviceId id) {
    return *islands_.at(static_cast<std::size_t>(
        device(id).island().value()));
  }

 private:
  sim::Simulator* sim_;
  SystemParams params_;
  net::DcnFabric dcn_;
  sim::TraceRecorder trace_;
  std::vector<std::unique_ptr<Island>> islands_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<Host*> host_of_;  // indexed by device id
};

}  // namespace pw::hw
