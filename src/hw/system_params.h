// Central calibration table for the simulated substrate.
//
// Every latency/bandwidth/cost constant the simulation uses lives here so
// that (a) EXPERIMENTS.md can document the calibration in one place and
// (b) benchmarks can perturb a single knob for ablations. Values are chosen
// to be representative of the paper's hardware: TPUv3-class accelerators,
// PCIe Gen3 hosts, and a DCN whose latency is an order of magnitude above
// PCIe (paper §2: "dispatch latency involves communication over DCN,
// typically an order of magnitude slower than PCIe").
#pragma once

#include <cstdint>

#include "common/units.h"
#include "net/collective_model.h"
#include "net/dcn.h"
#include "net/topology.h"

namespace pw::hw {

struct SystemParams {
  // --- PCIe (host <-> local device) ---
  Duration pcie_latency = Duration::Micros(2);
  double pcie_bandwidth = 16e9;  // bytes/sec

  // --- ICI (island-internal accelerator interconnect) ---
  net::CollectiveParams ici;  // defaults: 1us hop, 100 GB/s, 2us launch
  Duration ici_ptp_latency = Duration::Micros(1.5);
  double ici_ptp_bandwidth = 100e9;
  // Opt-in flow-level ICI: each island's devices form a 2D/3D torus and
  // both collectives and point-to-point transfers are priced on its links
  // (docs/NETWORK.md). Off by default — the analytic model above applies
  // and runs are bit-identical to earlier builds.
  net::IciFlowParams ici_flow;

  // --- DCN (host <-> host, cross-island) ---
  // Flow-level Clos mode lives in dcn.clos (net::DcnClosParams), same
  // defaults-off contract as ici_flow.
  net::DcnParams dcn;  // defaults: 20us latency, 12.5 GB/s NIC

  // --- Host-side CPU costs ---
  // Multi-controller kernel enqueue (prep + PCIe doorbell) per computation.
  Duration host_kernel_dispatch_cost = Duration::Micros(4);
  // Pathways executor host-side prep per node shard: input buffer
  // allocation, address exchange, launch descriptor construction.
  Duration executor_prep_cost = Duration::Micros(20);
  // Coordinator/scheduler cost to emit one dispatch message to one device
  // executor. This single constant produces Figure 6's convergence points:
  // 128 devices x 17us = 2.2ms, 2048 devices x 17us = 34.8ms.
  Duration coordinator_msg_cost = Duration::Micros(17);
  // Client-side cost to construct + issue one program RPC.
  Duration client_rpc_cost = Duration::Micros(30);
  // Gang-scheduler decision cost per program dispatch.
  Duration scheduler_decision_cost = Duration::Micros(5);
  // Interpreter overhead per user-level call in multi-controller frameworks
  // (the "transitions to Python for every computation" cost, §5.1).
  Duration python_call_overhead = Duration::Micros(800);
  // Multiplicative jitter applied to host-side work (exponential tail);
  // creates the straggler effect that degrades lock-step SPMD at scale.
  double host_jitter_frac = 0.05;

  // --- Device ---
  double device_flops = 61.5e12;       // peak per-core (TPUv3-class, bf16)
  double hbm_bandwidth = 700e9;        // bytes/sec
  Bytes hbm_capacity = GiB(16);
  Duration kernel_launch_overhead = Duration::Micros(3);

  // --- Host DRAM (spill target for cold device buffers, docs/MEMORY.md) ---
  Bytes host_dram_capacity = GiB(64);

  std::uint64_t seed = 42;

  // TPU-pod-like defaults (used by configs A/B/C).
  static SystemParams TpuDefault() { return SystemParams{}; }

  // GPU-VM cluster for the Ray baseline (paper: p3.2xlarge, 1xV100, hosts
  // connected only via DCN; no fast inter-host interconnect).
  static SystemParams GpuVmDefault() {
    SystemParams p;
    p.pcie_latency = Duration::Micros(5);
    p.pcie_bandwidth = 12e9;
    p.device_flops = 15.7e12;  // V100 fp32-ish
    p.hbm_capacity = GiB(16);
    p.dcn.latency = Duration::Micros(25);
    p.dcn.nic_bandwidth = 1.25e9;  // 10 Gb/s VM NIC
    // Cross-host collectives ride the DCN: flat NCCL-style ring.
    p.ici.hop_latency = Duration::Micros(25);
    p.ici.link_bandwidth = 1.25e9;
    p.ici.launch_overhead = Duration::Micros(10);
    p.ici.topology = net::LatencyTopology::kRing;
    return p;
  }
};

}  // namespace pw::hw
