#include "hw/cluster.h"

namespace pw::hw {

Island::Island(sim::Simulator* sim, IslandId id, const SystemParams& params)
    : sim_(sim), id_(id), params_(params), collective_model_(params.ici) {}

void Island::AddDevice(Device* d) {
  devices_.push_back(d);
  egress_.push_back(std::make_unique<net::Link>(
      sim_, "ici" + std::to_string(d->id().value()), params_.ici_ptp_latency,
      params_.ici_ptp_bandwidth));
}

sim::SimFuture<sim::Unit> Island::Transfer(DeviceId src, DeviceId dst, Bytes bytes) {
  // Locate the source device's egress link within this island.
  net::Link* link = nullptr;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i]->id() == src) {
      link = egress_[i].get();
      break;
    }
  }
  PW_CHECK(link != nullptr) << "device " << src << " not in island " << id_;
  bool dst_found = false;
  for (const Device* d : devices_) {
    if (d->id() == dst) {
      dst_found = true;
      break;
    }
  }
  PW_CHECK(dst_found) << "device " << dst << " not in island " << id_
                      << " (cross-island transfers must use the DCN)";
  ici_bytes_ += bytes;
  return link->TransferAsync(bytes);
}

Cluster::Cluster(sim::Simulator* sim, const SystemParams& params, int islands,
                 int hosts_per_island, int devices_per_host)
    : sim_(sim), params_(params), dcn_(sim, params.dcn) {
  PW_CHECK_GE(islands, 1);
  PW_CHECK_GE(hosts_per_island, 1);
  PW_CHECK_GE(devices_per_host, 1);
  IdGenerator<DeviceTag> device_ids;
  std::int64_t next_host = 0;
  for (int isl = 0; isl < islands; ++isl) {
    auto island = std::make_unique<Island>(sim, IslandId(isl), params_);
    for (int h = 0; h < hosts_per_island; ++h) {
      auto host = std::make_unique<Host>(sim, HostId(next_host++), params_, &dcn_);
      island->AddHost(host.get());
      for (int d = 0; d < devices_per_host; ++d) {
        auto dev = std::make_unique<Device>(sim, device_ids.Next(), IslandId(isl),
                                            params_.hbm_capacity,
                                            params_.kernel_launch_overhead,
                                            &trace_);
        host->AttachDevice(dev.get());
        island->AddDevice(dev.get());
        host_of_.push_back(host.get());
        devices_.push_back(std::move(dev));
      }
      hosts_.push_back(std::move(host));
    }
    islands_.push_back(std::move(island));
  }
}

std::unique_ptr<Cluster> Cluster::ConfigA(sim::Simulator* sim, int hosts,
                                          SystemParams params) {
  PW_CHECK_LE(hosts, 512) << "config A tops out at 512 hosts (2048 TPUs)";
  return std::make_unique<Cluster>(sim, params, /*islands=*/1, hosts,
                                   /*devices_per_host=*/4);
}

std::unique_ptr<Cluster> Cluster::ConfigB(sim::Simulator* sim, int hosts,
                                          SystemParams params) {
  PW_CHECK_LE(hosts, 64) << "config B tops out at 64 hosts (512 TPUs)";
  return std::make_unique<Cluster>(sim, params, /*islands=*/1, hosts,
                                   /*devices_per_host=*/8);
}

std::unique_ptr<Cluster> Cluster::ConfigC(sim::Simulator* sim, SystemParams params) {
  // Four islands, each 4 hosts x 8 TPUs = 32 TPUs per island.
  return std::make_unique<Cluster>(sim, params, /*islands=*/4,
                                   /*hosts_per_island=*/4,
                                   /*devices_per_host=*/8);
}

std::unique_ptr<Cluster> Cluster::GpuVm(sim::Simulator* sim, int hosts,
                                        SystemParams params) {
  // Every VM is its own "island" of one GPU; all communication is DCN.
  return std::make_unique<Cluster>(sim, params, /*islands=*/hosts,
                                   /*hosts_per_island=*/1,
                                   /*devices_per_host=*/1);
}

}  // namespace pw::hw
