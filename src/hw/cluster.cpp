#include "hw/cluster.h"

namespace pw::hw {

Island::Island(sim::Simulator* sim, IslandId id, const SystemParams& params)
    : sim_(sim),
      id_(id),
      params_(params),
      collective_model_(std::make_unique<net::CollectiveModel>(params.ici)) {}

void Island::AddDevice(Device* d) {
  devices_.push_back(d);
  egress_.push_back(std::make_unique<net::Link>(
      sim_, "ici" + std::to_string(d->id().value()), params_.ici_ptp_latency,
      params_.ici_ptp_bandwidth));
}

void Island::Finalize() {
  if (!params_.ici_flow.enabled) return;
  // Devices arrive one by one after construction, so the torus (whose shape
  // is the device count) can only be built here. Balanced 2D/3D dims; a
  // degenerate 1 x n "torus" (prime counts) is just a ring.
  const int n = static_cast<int>(devices_.size());
  const double bw = params_.ici_flow.link_bandwidth > 0
                        ? params_.ici_flow.link_bandwidth
                        : params_.ici.link_bandwidth;
  ici_topo_ = std::make_unique<net::Topology>();
  ici_torus_ = std::make_unique<net::TorusTopology>(
      ici_topo_.get(),
      net::TorusTopology::BalancedDims(n, params_.ici_flow.dims), bw,
      "ici" + std::to_string(id_.value()));
  ici_flows_ = std::make_unique<net::FlowNetwork>(sim_, ici_topo_.get());
  collective_model_ = std::make_unique<net::FlowCollectiveModel>(
      params_.ici, ici_topo_.get(), ici_torus_.get());
}

sim::SimFuture<sim::Unit> Island::Transfer(DeviceId src, DeviceId dst, Bytes bytes) {
  // Locate the source device's egress link within this island.
  int src_index = -1;
  net::Link* link = nullptr;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i]->id() == src) {
      src_index = static_cast<int>(i);
      link = egress_[i].get();
      break;
    }
  }
  PW_CHECK(link != nullptr) << "device " << src << " not in island " << id_;
  int dst_index = -1;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i]->id() == dst) {
      dst_index = static_cast<int>(i);
      break;
    }
  }
  PW_CHECK_GE(dst_index, 0) << "device " << dst << " not in island " << id_
                            << " (cross-island transfers must use the DCN)";
  ici_bytes_ += bytes;
  if (ici_flows_ && src_index != dst_index) {
    // Flow-level torus: contend on the dimension-ordered route.
    sim::SimPromise<sim::Unit> p(sim_);
    ici_flows_->StartFlow(ici_torus_->Path(src_index, dst_index), bytes,
                          params_.ici_ptp_latency,
                          [p]() mutable { p.Set(sim::Unit{}); });
    return p.future();
  }
  return link->TransferAsync(bytes);
}

Cluster::Cluster(sim::Simulator* sim, const SystemParams& params, int islands,
                 int hosts_per_island, int devices_per_host)
    : sim_(sim), params_(params), dcn_(sim, params.dcn) {
  PW_CHECK_GE(islands, 1);
  PW_CHECK_GE(hosts_per_island, 1);
  PW_CHECK_GE(devices_per_host, 1);
  IdGenerator<DeviceTag> device_ids;
  std::int64_t next_host = 0;
  for (int isl = 0; isl < islands; ++isl) {
    auto island = std::make_unique<Island>(sim, IslandId(isl), params_);
    for (int h = 0; h < hosts_per_island; ++h) {
      auto host = std::make_unique<Host>(sim, HostId(next_host++), params_, &dcn_);
      island->AddHost(host.get());
      for (int d = 0; d < devices_per_host; ++d) {
        auto dev = std::make_unique<Device>(sim, device_ids.Next(), IslandId(isl),
                                            params_.hbm_capacity,
                                            params_.kernel_launch_overhead,
                                            &trace_);
        host->AttachDevice(dev.get());
        island->AddDevice(dev.get());
        host_of_.push_back(host.get());
        devices_.push_back(std::move(dev));
      }
      hosts_.push_back(std::move(host));
    }
    island->Finalize();  // builds the flow-level ICI once devices exist
    islands_.push_back(std::move(island));
  }
}

std::unique_ptr<Cluster> Cluster::ConfigA(sim::Simulator* sim, int hosts,
                                          SystemParams params) {
  PW_CHECK_LE(hosts, 512) << "config A tops out at 512 hosts (2048 TPUs)";
  return std::make_unique<Cluster>(sim, params, /*islands=*/1, hosts,
                                   /*devices_per_host=*/4);
}

std::unique_ptr<Cluster> Cluster::ConfigB(sim::Simulator* sim, int hosts,
                                          SystemParams params) {
  PW_CHECK_LE(hosts, 64) << "config B tops out at 64 hosts (512 TPUs)";
  return std::make_unique<Cluster>(sim, params, /*islands=*/1, hosts,
                                   /*devices_per_host=*/8);
}

std::unique_ptr<Cluster> Cluster::ConfigC(sim::Simulator* sim, SystemParams params) {
  // Four islands, each 4 hosts x 8 TPUs = 32 TPUs per island.
  return std::make_unique<Cluster>(sim, params, /*islands=*/4,
                                   /*hosts_per_island=*/4,
                                   /*devices_per_host=*/8);
}

std::unique_ptr<Cluster> Cluster::GpuVm(sim::Simulator* sim, int hosts,
                                        SystemParams params) {
  // Every VM is its own "island" of one GPU; all communication is DCN.
  return std::make_unique<Cluster>(sim, params, /*islands=*/hosts,
                                   /*hosts_per_island=*/1,
                                   /*devices_per_host=*/1);
}

}  // namespace pw::hw
