// The hw-layer partition boundary: islands as logical processes.
//
// A PartitionedCluster builds one single-island hw::Cluster per LP of a
// PartitionedSimulator, so every device, host, ICI link, and flow-network
// structure of island i lives entirely on LP i and is only ever touched by
// events executing there. Intra-island traffic (ICI transfers, collectives,
// host DMA) stays LP-local and needs no synchronization at all; the only
// thing that crosses LPs is cross-island traffic, and all of it is routed
// through a shared net::LpChannelMap — the timestamped inter-LP channel
// whose latency floor equals the engine's lookahead.
//
// This mirrors the serial topology exactly: a serial Cluster with N islands
// has per-island ICI plus one DCN fabric; a PartitionedCluster has N
// LP-local clusters plus the channel map playing the DCN's role (per-pair
// serialization and FIFO, partition hold / heal replay, degrade scaling).
// The channel latency must be >= the engine lookahead — with the defaults
// both derive from the same physical quantity, the minimum cross-island
// DCN latency (DcnFabric::MinCrossIslandLatency).
//
// Device and host IDs are island-local: island_cluster(i).device(0) is the
// first device *of island i*. Cross-island code addresses peers by island
// index, which is also the LP index.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "hw/cluster.h"
#include "hw/system_params.h"
#include "net/lp_channel.h"
#include "sim/partition.h"

namespace pw::hw {

class PartitionedCluster {
 public:
  struct Options {
    int islands = 2;
    int hosts_per_island = 1;
    int devices_per_host = 2;
    SystemParams params = SystemParams::TpuDefault();
    // Cross-island channel. `channel.latency` must be >= the engine's
    // lookahead (LpChannelMap checks this at construction).
    net::LpChannelParams channel{};
  };

  // Requires psim->num_lps() >= opts.islands; island i lives on LP i.
  PartitionedCluster(sim::PartitionedSimulator* psim, Options opts);

  PartitionedCluster(const PartitionedCluster&) = delete;
  PartitionedCluster& operator=(const PartitionedCluster&) = delete;

  int num_islands() const { return static_cast<int>(clusters_.size()); }

  // The LP-local single-island cluster for island i.
  Cluster& island_cluster(int i) {
    return *clusters_.at(static_cast<std::size_t>(i));
  }

  net::LpChannelMap& channels() { return *channels_; }
  sim::PartitionedSimulator& engine() { return *psim_; }

  // Cross-island send: bytes from island src to island dst, on_delivered
  // running on LP dst at arrival. Must be called from an event executing on
  // LP src (or from setup). Returns the delivery time, or
  // LpChannelMap::kHeldSentinel when a partition held the message.
  TimePoint SendCrossIsland(int src, int dst, Bytes bytes,
                            std::function<void()> on_delivered) {
    return channels_->Send(src, dst, bytes, std::move(on_delivered));
  }

 private:
  sim::PartitionedSimulator* psim_;
  Options opts_;
  std::vector<std::unique_ptr<Cluster>> clusters_;  // index == island == LP
  std::unique_ptr<net::LpChannelMap> channels_;
};

}  // namespace pw::hw
