#include "hw/hbm.h"

#include <algorithm>

namespace pw::hw {

Status HbmAllocator::Allocate(Bytes bytes) {
  PW_CHECK_GE(bytes, 0);
  if (bytes == 0) return OkStatus();
  if (!waiters_.empty() || bytes > available()) {
    return ResourceExhaustedError("HBM full");
  }
  Admit(bytes);
  return OkStatus();
}

sim::SimFuture<sim::Unit> HbmAllocator::AllocateAsync(
    Bytes bytes, MemoryTicket ticket, std::function<void()> on_admit) {
  PW_CHECK_GE(bytes, 0);
  PW_CHECK_LE(bytes, capacity_) << "allocation can never fit in HBM";
  sim::SimPromise<sim::Unit> p(sim_);
  if (bytes == 0) {
    // An empty shard needs no capacity and can relieve none by waiting;
    // queueing it behind waiters only wedges drain paths.
    if (on_admit) on_admit();
    p.Set(sim::Unit{});
    return p.future();
  }
  if (waiters_.empty() && bytes <= available()) {
    Admit(bytes);
    if (on_admit) on_admit();
    p.Set(sim::Unit{});
    return p.future();
  }
  Waiter w{bytes, ticket, next_seq_++, p, std::move(on_admit)};
  const auto pos = std::upper_bound(
      waiters_.begin(), waiters_.end(), w,
      [this](const Waiter& a, const Waiter& b) {
        if (ticket_ordering_ && a.ticket != b.ticket) return a.ticket < b.ticket;
        return a.seq < b.seq;
      });
  waiters_.insert(pos, std::move(w));
  // The new request may itself be the globally oldest outstanding one (it
  // sorts ahead of every queued waiter) — serve the queue front in that
  // case rather than parking the old behind the young.
  ServeWaiters();
  return p.future();
}

void HbmAllocator::Free(Bytes bytes) {
  PW_CHECK_GE(bytes, 0);
  PW_CHECK_LE(bytes, used_) << "freeing more than allocated";
  used_ -= bytes;
  ServeWaiters();
}

void HbmAllocator::Admit(Bytes bytes) {
  used_ += bytes;
  peak_ = std::max(peak_, used_);
}

void HbmAllocator::ServeWaiters() {
  // Strictly in queue order: granting a younger waiter past a stalled older
  // one is exactly the inversion that lets reservation cycles form.
  while (!waiters_.empty() && waiters_.front().bytes <= available()) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    Admit(w.bytes);
    if (w.on_admit) w.on_admit();
    w.promise.Set(sim::Unit{});
  }
  if (!waiters_.empty()) NotifyStall();
}

void HbmAllocator::NotifyStall() {
  if (stall_observer_) stall_observer_();
}

MemoryTicket HbmAllocator::front_waiter_ticket() const {
  PW_CHECK(!waiters_.empty());
  return waiters_.front().ticket;
}

Bytes HbmAllocator::front_waiter_bytes() const {
  PW_CHECK(!waiters_.empty());
  return waiters_.front().bytes;
}

}  // namespace pw::hw
