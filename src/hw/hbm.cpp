#include "hw/hbm.h"

namespace pw::hw {

Status HbmAllocator::Allocate(Bytes bytes) {
  PW_CHECK_GE(bytes, 0);
  if (!waiters_.empty() || bytes > available()) {
    return ResourceExhaustedError("HBM full");
  }
  Admit(bytes);
  return OkStatus();
}

sim::SimFuture<sim::Unit> HbmAllocator::AllocateAsync(Bytes bytes) {
  PW_CHECK_GE(bytes, 0);
  PW_CHECK_LE(bytes, capacity_) << "allocation can never fit in HBM";
  sim::SimPromise<sim::Unit> p(sim_);
  if (waiters_.empty() && bytes <= available()) {
    Admit(bytes);
    p.Set(sim::Unit{});
  } else {
    waiters_.push_back(Waiter{bytes, p});
  }
  return p.future();
}

void HbmAllocator::Free(Bytes bytes) {
  PW_CHECK_GE(bytes, 0);
  PW_CHECK_LE(bytes, used_) << "freeing more than allocated";
  used_ -= bytes;
  ServeWaiters();
}

void HbmAllocator::Admit(Bytes bytes) {
  used_ += bytes;
  peak_ = std::max(peak_, used_);
}

void HbmAllocator::ServeWaiters() {
  while (!waiters_.empty() && waiters_.front().bytes <= available()) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    Admit(w.bytes);
    w.promise.Set(sim::Unit{});
  }
}

}  // namespace pw::hw
