// Rendezvous object for one dynamic instance of a collective operation.
//
// TPU-like devices are single-threaded and non-preemptible: once a device's
// kernel reaches its collective it parks at the rendezvous until *all*
// participants arrive (paper §2: "the system will deadlock if communicating
// computations are not enqueued in a consistent order"). The group completes
// max(arrival times) + CollectiveModel time; every participant's future
// fires then. CollectiveModel::Time is virtual: in flow-level ICI mode the
// island substitutes a net::FlowCollectiveModel that prices the same call
// from link-level ring/tree flows over the torus (docs/NETWORK.md), so
// every xlasim/pathways call site is topology-aware without changes here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "net/collective_model.h"
#include "sim/future.h"
#include "sim/simulator.h"

namespace pw::hw {

class CollectiveGroup {
 public:
  CollectiveGroup(sim::Simulator* sim, const net::CollectiveModel* model,
                  net::CollectiveKind kind, int num_participants,
                  std::string label = "collective")
      : sim_(sim),
        model_(model),
        kind_(kind),
        expected_(num_participants),
        label_(std::move(label)) {
    PW_CHECK_GE(num_participants, 1);
  }

  // A participant reached the collective with `bytes` payload per shard.
  // The returned future completes when the collective completes (same
  // simulated instant for all participants). Arriving at an aborted group
  // completes immediately: the collective errored out, the device moves on.
  sim::SimFuture<sim::Unit> Arrive(Bytes bytes) {
    if (aborted_) return ReadyFuture(sim_, sim::Unit{});
    PW_CHECK_LT(arrived_, expected_) << label_ << ": too many arrivals";
    bytes_ = std::max(bytes_, bytes);
    ++arrived_;
    sim::SimPromise<sim::Unit> p(sim_);
    auto fut = p.future();
    waiting_.push_back(std::move(p));
    if (arrived_ == expected_) {
      const Duration comm = model_->Time(kind_, bytes_, expected_);
      completion_time_ = sim_->now() + comm;
      // Release all participants at the completion time.
      auto waiters = std::make_shared<std::vector<sim::SimPromise<sim::Unit>>>(
          std::move(waiting_));
      waiting_.clear();
      sim_->ScheduleAt(completion_time_, [waiters] {
        for (auto& w : *waiters) w.Set(sim::Unit{});
      });
      complete_ = true;
    }
    return fut;
  }

  // Aborts the rendezvous (a participant's device failed and will never
  // arrive): every parked participant is released now, and participants that
  // arrive later complete immediately. Models a collective erroring out so
  // that non-preemptible devices do not hang forever on a dead peer.
  void Abort() {
    if (aborted_ || complete_) return;
    aborted_ = true;
    if (waiting_.empty()) return;
    auto waiters = std::make_shared<std::vector<sim::SimPromise<sim::Unit>>>(
        std::move(waiting_));
    waiting_.clear();
    sim_->Schedule(Duration::Zero(), [waiters] {
      for (auto& w : *waiters) w.Set(sim::Unit{});
    });
  }

  bool complete() const { return complete_; }
  bool aborted() const { return aborted_; }
  int arrived() const { return arrived_; }
  int expected() const { return expected_; }
  const std::string& label() const { return label_; }

  // Deadlock-probe helper: participants are stuck here if some but not all
  // arrived and the rendezvous can no longer make progress.
  bool stalled() const { return !complete_ && !aborted_ && arrived_ > 0; }

 private:
  sim::Simulator* sim_;
  const net::CollectiveModel* model_;
  net::CollectiveKind kind_;
  int expected_;
  std::string label_;
  int arrived_ = 0;
  Bytes bytes_ = 0;
  bool complete_ = false;
  bool aborted_ = false;
  TimePoint completion_time_;
  std::vector<sim::SimPromise<sim::Unit>> waiting_;
};

}  // namespace pw::hw
