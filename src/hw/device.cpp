#include "hw/device.h"

#include <sstream>

namespace pw::hw {

Device::Device(sim::Simulator* sim, DeviceId id, IslandId island,
               Bytes hbm_capacity, Duration launch_overhead,
               sim::TraceRecorder* trace)
    : sim_(sim),
      id_(id),
      island_(island),
      hbm_(sim, hbm_capacity),
      launch_overhead_(launch_overhead),
      trace_(trace) {
  sim_->RegisterBlockedProbe([this] { return BlockedReason(); });
}

sim::SimFuture<sim::Unit> Device::Enqueue(KernelDesc desc) {
  queue_.push_back(QueuedKernel{std::move(desc), sim::SimPromise<sim::Unit>(sim_)});
  auto fut = queue_.back().done.future();
  // Start attempt runs as an event so Enqueue is safe to call from anywhere.
  sim_->Schedule(Duration::Zero(), [this] { MaybeStart(); });
  return fut;
}

void Device::MaybeStart() {
  if (executing_ || waiting_inputs_ || queue_.empty()) return;
  QueuedKernel& head = queue_.front();
  // Gate on inputs (DMA completions). Futures are one-shot, so re-checking
  // after WhenAll fires is cheap and exact.
  std::vector<sim::SimFuture<sim::Unit>> pending;
  for (const auto& f : head.desc.inputs) {
    if (!f.ready()) pending.push_back(f);
  }
  if (!pending.empty()) {
    waiting_inputs_ = true;
    sim::WhenAll(sim_, pending).Then([this](const sim::Unit&) {
      waiting_inputs_ = false;
      MaybeStart();
    });
    return;
  }
  RunHead();
}

void Device::RunHead() {
  executing_ = true;
  const TimePoint started = sim_->now();
  QueuedKernel& head = queue_.front();
  const Duration pre = launch_overhead_ + head.desc.pre_time;
  if (head.desc.collective != nullptr) {
    auto group = head.desc.collective;
    const Bytes bytes = head.desc.collective_bytes;
    sim_->Schedule(pre, [this, group, bytes, started] {
      at_rendezvous_ = true;
      group->Arrive(bytes).Then([this, started](const sim::Unit&) {
        at_rendezvous_ = false;
        const Duration post = queue_.front().desc.post_time;
        sim_->Schedule(post, [this, started] { FinishHead(started); });
      });
    });
  } else {
    sim_->Schedule(pre + head.desc.post_time,
                   [this, started] { FinishHead(started); });
  }
}

void Device::FinishHead(TimePoint started) {
  QueuedKernel head = std::move(queue_.front());
  queue_.pop_front();
  executing_ = false;
  ++completed_;
  busy_accum_ += sim_->now() - started;
  if (trace_ != nullptr) {
    trace_->Record("dev" + std::to_string(id_.value()), head.desc.client,
                   head.desc.label, started, sim_->now());
  }
  head.done.Set(sim::Unit{});
  MaybeStart();
}

std::string Device::BlockedReason() const {
  std::ostringstream out;
  if (at_rendezvous_) {
    const auto& head = queue_.front();
    out << "dev" << id_ << " parked at collective '"
        << head.desc.collective->label() << "' (" << head.desc.collective->arrived()
        << "/" << head.desc.collective->expected() << " arrived)";
    return out.str();
  }
  if (waiting_inputs_) {
    out << "dev" << id_ << " waiting for inputs of '" << queue_.front().desc.label
        << "'";
    return out.str();
  }
  return "";
}

}  // namespace pw::hw
