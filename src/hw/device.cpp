#include "hw/device.h"

#include <sstream>

namespace pw::hw {

Device::Device(sim::Simulator* sim, DeviceId id, IslandId island,
               Bytes hbm_capacity, Duration launch_overhead,
               sim::TraceRecorder* trace)
    : sim_(sim),
      id_(id),
      island_(island),
      hbm_(sim, hbm_capacity),
      launch_overhead_(launch_overhead),
      trace_(trace) {
  sim_->RegisterBlockedProbe([this] { return BlockedReason(); });
}

sim::SimFuture<sim::Unit> Device::Enqueue(KernelDesc desc) {
  if (failed()) {
    // Fail-stop: the kernel vanishes without running. Completion fires so
    // host-side bookkeeping (scratch frees, in-order stream accounting)
    // unwinds; the owning execution was aborted when the device went down,
    // so the completion carries no semantic weight.
    ++dropped_;
    return sim::ReadyFuture(sim_, sim::Unit{});
  }
  queue_.push_back(QueuedKernel{std::move(desc), sim::SimPromise<sim::Unit>(sim_)});
  auto fut = queue_.back().done.future();
  // Start attempt runs as an event so Enqueue is safe to call from anywhere.
  const std::uint64_t ep = epoch_;
  sim_->Schedule(Duration::Zero(), [this, ep] {
    if (ep != epoch_) return;
    MaybeStart();
  });
  return fut;
}

void Device::Fail() {
  if (failed()) return;
  health_ = DeviceHealth::kFailed;
  ++failures_;
  ++epoch_;  // kill every timing event scheduled for the old stream
  executing_ = false;
  waiting_inputs_ = false;
  at_rendezvous_ = false;
  // Discard the stream. Completion futures fire (as zero-delay events) so
  // executor continuations run their cleanup; the executions owning these
  // kernels are aborted by the layers above.
  std::deque<QueuedKernel> doomed = std::move(queue_);
  queue_.clear();
  for (QueuedKernel& k : doomed) {
    ++dropped_;
    k.done.Set(sim::Unit{});
  }
}

void Device::Recover() {
  if (!failed()) return;
  health_ = DeviceHealth::kHealthy;
  // The stream is empty after Fail(); nothing to restart. MaybeStart() keeps
  // the invariant obvious if that ever changes.
  MaybeStart();
}

void Device::set_compute_multiplier(double m) {
  PW_CHECK_GT(m, 0.0) << "compute multiplier must be positive";
  compute_multiplier_ = m;
}

void Device::MaybeStart() {
  if (executing_ || waiting_inputs_ || failed() || queue_.empty()) return;
  QueuedKernel& head = queue_.front();
  // Gate on inputs (DMA completions). Futures are one-shot, so re-checking
  // after WhenAll fires is cheap and exact.
  std::vector<sim::SimFuture<sim::Unit>> pending;
  for (const auto& f : head.desc.inputs) {
    if (!f.ready()) pending.push_back(f);
  }
  if (!pending.empty()) {
    waiting_inputs_ = true;
    const std::uint64_t ep = epoch_;
    sim::WhenAll(sim_, pending).Then([this, ep](const sim::Unit&) {
      if (ep != epoch_) return;
      waiting_inputs_ = false;
      MaybeStart();
    });
    return;
  }
  RunHead();
}

void Device::RunHead() {
  executing_ = true;
  const TimePoint started = sim_->now();
  const std::uint64_t ep = epoch_;
  QueuedKernel& head = queue_.front();
  const Duration pre = launch_overhead_ + ScaleCompute(head.desc.pre_time);
  if (head.desc.collective != nullptr) {
    auto group = head.desc.collective;
    const Bytes bytes = head.desc.collective_bytes;
    sim_->Schedule(pre, [this, ep, group, bytes, started] {
      if (ep != epoch_) return;
      at_rendezvous_ = true;
      group->Arrive(bytes).Then([this, ep, started](const sim::Unit&) {
        if (ep != epoch_) return;
        at_rendezvous_ = false;
        const Duration post = ScaleCompute(queue_.front().desc.post_time);
        sim_->Schedule(post, [this, ep, started] {
          if (ep != epoch_) return;
          FinishHead(started);
        });
      });
    });
  } else {
    sim_->Schedule(pre + ScaleCompute(head.desc.post_time),
                   [this, ep, started] {
                     if (ep != epoch_) return;
                     FinishHead(started);
                   });
  }
}

void Device::FinishHead(TimePoint started) {
  QueuedKernel head = std::move(queue_.front());
  queue_.pop_front();
  executing_ = false;
  ++completed_;
  busy_accum_ += sim_->now() - started;
  if (trace_ != nullptr) {
    trace_->Record("dev" + std::to_string(id_.value()), head.desc.client,
                   head.desc.label, started, sim_->now());
  }
  head.done.Set(sim::Unit{});
  MaybeStart();
}

std::string Device::BlockedReason() const {
  std::ostringstream out;
  if (at_rendezvous_) {
    const auto& head = queue_.front();
    out << "dev" << id_ << " parked at collective '"
        << head.desc.collective->label() << "' (" << head.desc.collective->arrived()
        << "/" << head.desc.collective->expected() << " arrived)";
    return out.str();
  }
  if (waiting_inputs_) {
    out << "dev" << id_ << " waiting for inputs of '" << queue_.front().desc.label
        << "'";
    return out.str();
  }
  return "";
}

}  // namespace pw::hw
