// TPU-like accelerator device.
//
// Semantics matching the paper's TPU model (§2, Appendix A.5):
//   * single-threaded: executes exactly one kernel at a time;
//   * non-preemptible: a started kernel runs to completion;
//   * in-order: kernels run in enqueue order (the hardware stream);
//   * a kernel may contain a collective, at which point the device parks
//     at the rendezvous until all participants arrive.
//
// Kernels gate on input futures *before* starting (DMA completions of the
// input buffers); once started the device is committed. Devices register a
// blocked-probe with the simulator so that quiescence with a parked device
// is reported as a deadlock — the failure mode gang-scheduling prevents.
//
// Availability state machine (fault injection, see docs/FAULTS.md):
// a device is kHealthy or kFailed. Fail() is fail-stop: the in-flight
// kernel is abandoned, queued kernels are discarded (their completion
// futures fire so host-side cleanup unwinds), and kernels enqueued while
// failed complete immediately without running — the layers above are
// responsible for having aborted the executions that owned them. Recover()
// returns the device to service with an empty stream. A per-device compute
// multiplier (straggler injection) scales kernel pre/post compute time;
// at exactly 1.0 the timing math is bypassed so fault-free runs stay
// bit-identical to builds without the fault subsystem.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strong_id.h"
#include "common/units.h"
#include "hw/collective_group.h"
#include "hw/hbm.h"
#include "sim/future.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace pw::hw {

struct DeviceTag {};
using DeviceId = StrongId<DeviceTag>;
struct IslandTag {};
using IslandId = StrongId<IslandTag>;

// One accelerator kernel: optional compute before a collective, the
// collective itself, and compute after. Plain compute kernels leave
// `collective` null.
struct KernelDesc {
  std::string label = "kernel";
  std::int64_t client = -1;  // for tracing / fairness accounting
  Duration pre_time = Duration::Zero();
  std::shared_ptr<CollectiveGroup> collective;  // may be null
  Bytes collective_bytes = 0;
  Duration post_time = Duration::Zero();
  std::vector<sim::SimFuture<sim::Unit>> inputs;  // must complete to start
};

enum class DeviceHealth { kHealthy, kFailed };

class Device {
 public:
  Device(sim::Simulator* sim, DeviceId id, IslandId island, Bytes hbm_capacity,
         Duration launch_overhead, sim::TraceRecorder* trace = nullptr);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  DeviceId id() const { return id_; }
  IslandId island() const { return island_; }
  HbmAllocator& hbm() { return hbm_; }
  const HbmAllocator& hbm() const { return hbm_; }

  // Enqueues a kernel on the device stream; returns its completion future.
  // Order of Enqueue calls is the execution order (TPU stream semantics).
  // On a failed device the future fires immediately and the kernel never
  // runs (no compute, no trace span); callers that care must check health
  // before enqueueing.
  sim::SimFuture<sim::Unit> Enqueue(KernelDesc desc);

  // --- Availability state machine ---
  // Fail-stop crash: abandons the in-flight kernel, discards the queue
  // (firing each discarded kernel's completion future so executor cleanup
  // runs), and rejects future work until Recover(). Idempotent.
  void Fail();
  // Returns a failed device to service with an empty stream. Idempotent.
  void Recover();
  DeviceHealth health() const { return health_; }
  bool failed() const { return health_ == DeviceHealth::kFailed; }

  // Straggler knob: scales kernel pre/post compute time (> 0; 1.0 = nominal,
  // 2.0 = twice as slow). Exactly 1.0 bypasses the scaling arithmetic.
  void set_compute_multiplier(double m);
  double compute_multiplier() const { return compute_multiplier_; }

  // Observability.
  std::int64_t kernels_completed() const { return completed_; }
  std::int64_t kernels_dropped() const { return dropped_; }
  std::int64_t failures() const { return failures_; }
  std::size_t queue_depth() const { return queue_.size(); }
  Duration busy_time() const { return busy_accum_; }
  bool executing() const { return executing_; }

  // Description of why this device is blocked, or "" if it is not. Used by
  // Simulator deadlock probes.
  std::string BlockedReason() const;

  void set_trace(sim::TraceRecorder* trace) { trace_ = trace; }

 private:
  struct QueuedKernel {
    KernelDesc desc;
    sim::SimPromise<sim::Unit> done;
  };

  void MaybeStart();
  void RunHead();
  void FinishHead(TimePoint started);
  Duration ScaleCompute(Duration d) const {
    return compute_multiplier_ == 1.0 ? d : d * compute_multiplier_;
  }

  sim::Simulator* sim_;
  DeviceId id_;
  IslandId island_;
  HbmAllocator hbm_;
  Duration launch_overhead_;
  sim::TraceRecorder* trace_;

  std::deque<QueuedKernel> queue_;
  bool executing_ = false;        // head kernel occupies the core
  bool waiting_inputs_ = false;   // head kernel gated on input futures
  bool at_rendezvous_ = false;    // head kernel parked at a collective
  DeviceHealth health_ = DeviceHealth::kHealthy;
  // Bumped by Fail(): timing events scheduled before the crash carry the
  // epoch they were scheduled in and no-op if it moved (the kernel they
  // belonged to is gone).
  std::uint64_t epoch_ = 0;
  double compute_multiplier_ = 1.0;
  std::int64_t completed_ = 0;
  std::int64_t dropped_ = 0;      // kernels discarded by Fail()/while failed
  std::int64_t failures_ = 0;
  Duration busy_accum_;
};

}  // namespace pw::hw
