#include "hw/partitioned_cluster.h"

#include <utility>

namespace pw::hw {

PartitionedCluster::PartitionedCluster(sim::PartitionedSimulator* psim,
                                       Options opts)
    : psim_(psim), opts_(std::move(opts)) {
  PW_CHECK(psim_ != nullptr);
  PW_CHECK_GE(psim_->num_lps(), opts_.islands)
      << "each island needs its own LP";
  PW_CHECK_GE(opts_.channel.latency.nanos(), psim_->lookahead().nanos())
      << "cross-island latency below the engine lookahead";
  clusters_.reserve(static_cast<std::size_t>(opts_.islands));
  for (int i = 0; i < opts_.islands; ++i) {
    clusters_.push_back(std::make_unique<Cluster>(
        &psim_->lp(i), opts_.params, /*islands=*/1, opts_.hosts_per_island,
        opts_.devices_per_host));
  }
  channels_ = std::make_unique<net::LpChannelMap>(psim_, opts_.channel);
}

}  // namespace pw::hw
