// HBM capacity accounting with back-pressure.
//
// The paper (§4.6): "We can use simple back-pressure to stall a computation
// if it cannot allocate memory because other computations' buffers are
// temporarily occupying HBM." AllocateAsync returns a future that stays
// pending until capacity frees up.
//
// Waiter service order is the deadlock story (docs/MEMORY.md). Requests
// carry a MemoryTicket — the scheduler-consistent global reservation order,
// drawn per gang at dispatch time and per staged buffer at creation — and
// the queue serves strictly smallest ticket first (FIFO among equal
// tickets, so unticketed callers keep arrival order). For gangs of one
// island this matches arrival order by construction (the island scheduler
// is the single emission point); what it fixes is every *other* source of
// reservations — client staging, retries — racing the gang pipeline into
// inconsistent per-device orders, the inversion that lets two entities
// each hold one device while queueing behind the other (the paper's §4.6
// "scheduler ensures allocation order" argument made real).
//
// Zero-byte requests are granted immediately, never queued: an empty shard
// consumes no capacity and can relieve no pressure by waiting — parking it
// behind waiters only creates drain-path deadlocks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>

#include "common/logging.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/future.h"

namespace pw::hw {

// Global reservation order; lower = older = served first. Requests without
// a ticket sort after all ticketed ones, in arrival order.
using MemoryTicket = std::uint64_t;
inline constexpr MemoryTicket kUnticketed =
    std::numeric_limits<MemoryTicket>::max();

class HbmAllocator {
 public:
  HbmAllocator(sim::Simulator* sim, Bytes capacity)
      : sim_(sim), capacity_(capacity) {
    PW_CHECK_GT(capacity, 0);
  }

  // Immediate allocation; fails (without queuing) if space is unavailable.
  Status Allocate(Bytes bytes);

  // Queued allocation: the returned future completes when the reservation
  // succeeds. Requests larger than total capacity fail the process (caller
  // bug). `on_admit`, if given, runs synchronously at the instant capacity
  // is debited (before the future's callbacks fire) — the object store uses
  // it to retire declared demand without an extra event.
  sim::SimFuture<sim::Unit> AllocateAsync(
      Bytes bytes, MemoryTicket ticket = kUnticketed,
      std::function<void()> on_admit = nullptr);

  void Free(Bytes bytes);

  // Test hook (PathwaysOptions::enforce_reservation_ordering=false): ignore
  // tickets and serve waiters in plain arrival order — the pre-fix
  // behavior the ordering regression tests resurrect.
  void set_ticket_ordering(bool enabled) { ticket_ordering_ = enabled; }

  // Stall observer: invoked (synchronously) whenever a request queues, and
  // whenever the queue remains non-empty after a Free could not drain it.
  // The spill subsystem hangs off this.
  void set_stall_observer(std::function<void()> fn) {
    stall_observer_ = std::move(fn);
  }

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes available() const { return capacity_ - used_; }
  Bytes peak_used() const { return peak_; }
  std::size_t waiters() const { return waiters_.size(); }

  // True if a queued reservation exists that cannot be granted right now.
  bool HasStalledWaiter() const { return !waiters_.empty(); }
  // Ticket/bytes of the waiter that must be served next; only valid when
  // HasStalledWaiter().
  MemoryTicket front_waiter_ticket() const;
  Bytes front_waiter_bytes() const;

 private:
  struct Waiter {
    Bytes bytes;
    MemoryTicket ticket;
    std::uint64_t seq;  // arrival order, the FIFO tie-break
    sim::SimPromise<sim::Unit> promise;
    std::function<void()> on_admit;
  };

  void Admit(Bytes bytes);
  void ServeWaiters();
  void NotifyStall();

  sim::Simulator* sim_;
  Bytes capacity_;
  Bytes used_ = 0;
  Bytes peak_ = 0;
  // Sorted by (ticket, seq) when ticket_ordering_ is on; by seq otherwise.
  std::deque<Waiter> waiters_;
  std::uint64_t next_seq_ = 0;
  bool ticket_ordering_ = true;
  std::function<void()> stall_observer_;
};

}  // namespace pw::hw
