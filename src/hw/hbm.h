// HBM capacity accounting with back-pressure.
//
// The paper (§4.6): "We can use simple back-pressure to stall a computation
// if it cannot allocate memory because other computations' buffers are
// temporarily occupying HBM." AllocateAsync returns a future that stays
// pending until capacity frees up; waiters are served FIFO so no request
// starves.
#pragma once

#include <cstdint>
#include <deque>

#include "common/logging.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/future.h"

namespace pw::hw {

class HbmAllocator {
 public:
  HbmAllocator(sim::Simulator* sim, Bytes capacity)
      : sim_(sim), capacity_(capacity) {
    PW_CHECK_GT(capacity, 0);
  }

  // Immediate allocation; fails (without queuing) if space is unavailable.
  Status Allocate(Bytes bytes);

  // Queued allocation: the returned future completes when the reservation
  // succeeds. Requests larger than total capacity fail the process (caller
  // bug). FIFO service order.
  sim::SimFuture<sim::Unit> AllocateAsync(Bytes bytes);

  void Free(Bytes bytes);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes available() const { return capacity_ - used_; }
  Bytes peak_used() const { return peak_; }
  std::size_t waiters() const { return waiters_.size(); }

 private:
  struct Waiter {
    Bytes bytes;
    sim::SimPromise<sim::Unit> promise;
  };

  void Admit(Bytes bytes);
  void ServeWaiters();

  sim::Simulator* sim_;
  Bytes capacity_;
  Bytes used_ = 0;
  Bytes peak_ = 0;
  std::deque<Waiter> waiters_;
};

}  // namespace pw::hw
