// A host machine: CPU dispatch thread, PCIe links to its local devices, and
// a NIC on the DCN fabric. Hosts are where all framework-side work costs
// time: kernel dispatch, executor prep, RPC handling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "hw/device.h"
#include "hw/system_params.h"
#include "memory/dram_allocator.h"
#include "net/dcn.h"
#include "net/link.h"
#include "sim/serial_resource.h"
#include "sim/simulator.h"

namespace pw::hw {

using HostId = net::HostId;

class Host {
 public:
  Host(sim::Simulator* sim, HostId id, const SystemParams& params,
       net::DcnFabric* dcn);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  HostId id() const { return id_; }

  // Attaches a locally connected device (creates its PCIe link).
  void AttachDevice(Device* device);
  const std::vector<Device*>& devices() const { return devices_; }

  // The host's dispatch thread; work submitted here serializes.
  sim::SerialResource& cpu() { return cpu_; }

  // Runs `fn` after `cost` of CPU time (queued FIFO on the dispatch thread).
  void RunOnCpu(Duration cost, std::function<void()> fn) {
    cpu_.Submit(cost, std::move(fn));
  }

  // Enqueues `kernel` on a local device: CPU dispatch cost, then the command
  // crosses PCIe, then the kernel joins the device stream. Returns a future
  // for the *kernel completion* (not the enqueue).
  sim::SimFuture<sim::Unit> DispatchKernel(Device* device, KernelDesc kernel,
                                           Duration cpu_cost);

  // Sends `bytes` to another host over the DCN; `on_delivered` runs at the
  // destination's arrival time.
  void SendDcn(HostId dst, Bytes bytes, std::function<void()> on_delivered) {
    dcn_->Send(id_, dst, bytes, std::move(on_delivered));
  }
  sim::SimFuture<sim::Unit> SendDcnAsync(HostId dst, Bytes bytes) {
    return dcn_->SendAsync(id_, dst, bytes);
  }

  net::Link& pcie(DeviceId device) {
    auto it = pcie_.find(device);
    PW_CHECK(it != pcie_.end()) << "device " << device << " not on host " << id_;
    return *it->second;
  }

  net::DcnFabric& dcn() { return *dcn_; }
  const SystemParams& params() const { return params_; }

  // Host DRAM backing spilled/staged device data (capacity accounting only;
  // the spill data path itself rides the device's PCIe link).
  memory::DramAllocator& dram() { return dram_; }
  const memory::DramAllocator& dram() const { return dram_; }

 private:
  sim::Simulator* sim_;
  HostId id_;
  const SystemParams& params_;
  net::DcnFabric* dcn_;
  sim::SerialResource cpu_;
  memory::DramAllocator dram_;
  std::vector<Device*> devices_;
  std::map<DeviceId, std::unique_ptr<net::Link>> pcie_;
};

}  // namespace pw::hw
