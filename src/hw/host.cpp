#include "hw/host.h"

namespace pw::hw {

Host::Host(sim::Simulator* sim, HostId id, const SystemParams& params,
           net::DcnFabric* dcn)
    : sim_(sim),
      id_(id),
      params_(params),
      dcn_(dcn),
      cpu_(sim, "host" + std::to_string(id.value()) + "/cpu"),
      dram_(params.host_dram_capacity) {
  dcn_->AddHost(id_);
}

void Host::AttachDevice(Device* device) {
  PW_CHECK(device != nullptr);
  devices_.push_back(device);
  pcie_[device->id()] = std::make_unique<net::Link>(
      sim_, "pcie" + std::to_string(device->id().value()), params_.pcie_latency,
      params_.pcie_bandwidth);
}

sim::SimFuture<sim::Unit> Host::DispatchKernel(Device* device, KernelDesc kernel,
                                               Duration cpu_cost) {
  PW_CHECK(device != nullptr);
  sim::SimPromise<sim::Unit> done(sim_);
  auto fut = done.future();
  net::Link& link = pcie(device->id());
  // CPU prep, then a small command descriptor crosses PCIe, then the kernel
  // joins the device stream.
  RunOnCpu(cpu_cost, [this, device, &link, kernel = std::move(kernel),
                      done]() mutable {
    (void)this;
    link.Transfer(/*bytes=*/256, [device, kernel = std::move(kernel),
                                  done]() mutable {
      device->Enqueue(std::move(kernel)).Then([done](const sim::Unit&) mutable {
        done.Set(sim::Unit{});
      });
    });
  });
  return fut;
}

}  // namespace pw::hw
