// Host-DRAM capacity accounting for spilled/staged device data.
//
// Unlike HBM, host DRAM is not a back-pressured resource in this model:
// spills are opportunistic, so a caller that cannot get DRAM simply skips
// the spill (the victim stays resident) instead of queueing. TryAllocate /
// Free keep exact byte accounting so tests can assert that fault unwinding
// returns every spilled byte.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/logging.h"
#include "common/units.h"

namespace pw::memory {

class DramAllocator {
 public:
  explicit DramAllocator(Bytes capacity) : capacity_(capacity) {
    PW_CHECK_GT(capacity, 0);
  }

  DramAllocator(const DramAllocator&) = delete;
  DramAllocator& operator=(const DramAllocator&) = delete;

  // Returns false (and allocates nothing) if `bytes` does not fit.
  bool TryAllocate(Bytes bytes) {
    PW_CHECK_GE(bytes, 0);
    if (bytes > available()) return false;
    used_ += bytes;
    peak_ = std::max(peak_, used_);
    return true;
  }

  void Free(Bytes bytes) {
    PW_CHECK_GE(bytes, 0);
    PW_CHECK_LE(bytes, used_) << "freeing more DRAM than allocated";
    used_ -= bytes;
  }

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes available() const { return capacity_ - used_; }
  Bytes peak_used() const { return peak_; }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  Bytes peak_ = 0;
};

}  // namespace pw::memory
