#include "memory/spiller.h"

namespace pw::memory {

void Spiller::OnStall(int device) {
  if (!options_.enabled) return;
  if (kick_pending_[device]) return;
  if (inflight_[device] >= options_.max_concurrent_per_device) return;
  kick_pending_[device] = true;
  sim_->Schedule(Duration::Zero(), [this, device] {
    kick_pending_[device] = false;
    Kick(device);
  });
}

void Spiller::OnSpillComplete(int device) {
  --inflight_[device];
  PW_CHECK_GE(inflight_[device], 0);
  if (backend_->HasStalledReservation(device)) OnStall(device);
}

void Spiller::Kick(int device) {
  ++stall_kicks_;
  while (backend_->HasStalledReservation(device) &&
         inflight_[device] < options_.max_concurrent_per_device) {
    if (backend_->StartSpill(device)) {
      ++inflight_[device];
      ++spills_started_;
      continue;
    }
    // Nothing spillable right now: running kernels or in-flight migrations
    // will free memory and re-trigger us. If nothing ever does, quiescence
    // reports the wedge (blocked probes / CheckNoReservationWedge).
    return;
  }
}

}  // namespace pw::memory
