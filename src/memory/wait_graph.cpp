#include "memory/wait_graph.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace pw::memory {

void WaitForGraph::AddEdge(std::int64_t from, std::int64_t to,
                           std::string label) {
  edges_[from].push_back(Edge{to, std::move(label)});
}

std::size_t WaitForGraph::num_edges() const {
  std::size_t n = 0;
  for (const auto& [from, out] : edges_) n += out.size();
  return n;
}

std::vector<std::int64_t> WaitForGraph::FindCycle() const {
  // Iterative DFS keeping the gray path explicitly; std::map iteration gives
  // a deterministic visit order, so the same graph reports the same cycle.
  enum : int { kWhite = 0, kGray = 1, kBlack = 2 };
  std::map<std::int64_t, int> color;
  for (const auto& [start, unused] : edges_) {
    (void)unused;
    if (color[start] != kWhite) continue;
    std::vector<std::pair<std::int64_t, std::size_t>> stack;  // (node, next edge)
    std::vector<std::int64_t> path;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      const std::int64_t node = stack.back().first;
      const std::size_t idx = stack.back().second;
      if (idx == 0) {
        color[node] = kGray;
        path.push_back(node);
      }
      const auto it = edges_.find(node);
      const std::size_t degree = it == edges_.end() ? 0 : it->second.size();
      if (idx < degree) {
        ++stack.back().second;
        const std::int64_t next = it->second[idx].to;
        if (color[next] == kGray) {
          // Back edge: the gray path from `next` to `node` closes a cycle.
          auto pos = std::find(path.begin(), path.end(), next);
          std::vector<std::int64_t> cycle(pos, path.end());
          cycle.push_back(next);
          return cycle;
        }
        if (color[next] == kWhite) stack.emplace_back(next, 0);
      } else {
        color[node] = kBlack;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
  return {};
}

std::string WaitForGraph::DescribeCycle(
    const std::map<std::int64_t, std::string>& names) const {
  const std::vector<std::int64_t> cycle = FindCycle();
  if (cycle.empty()) return "";
  auto name_of = [&names](std::int64_t id) -> std::string {
    auto it = names.find(id);
    if (it != names.end()) return it->second;
    std::ostringstream os;
    os << "entity " << id;
    return os.str();
  };
  std::ostringstream os;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) {
      // Attach the edge label between cycle[i-1] and cycle[i], if any.
      std::string label;
      auto it = edges_.find(cycle[i - 1]);
      if (it != edges_.end()) {
        for (const Edge& e : it->second) {
          if (e.to == cycle[i] && !e.label.empty()) {
            label = e.label;
            break;
          }
        }
      }
      os << " -> ";
      if (!label.empty()) os << "[" << label << "] ";
    }
    os << name_of(cycle[i]);
  }
  return os.str();
}

}  // namespace pw::memory
