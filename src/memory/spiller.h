// Spiller: reacts to HBM back-pressure stalls by migrating idle device
// buffers to host DRAM (paper §4.6 made survivable: back-pressure stalls a
// computation when HBM is occupied, and the spiller is what eventually
// un-occupies it when the holders are merely cold, not running).
//
// The spiller is policy + pacing only. Mechanism — victim selection state,
// residency transitions, PCIe modeling, allocator accounting — lives behind
// the SpillBackend interface (implemented by pathways::ObjectStore), which
// keeps this module free of upper-layer types. Per device the spiller keeps
// at most `max_concurrent_per_device` migrations in flight; every spill
// completion re-checks the stall and kicks again, so a deep waiter queue
// drains one LRU victim at a time.
//
// A stall with nothing left to spill is left alone: mid-run it is usually a
// plain capacity wait that running kernels or in-flight migrations relieve
// (every completion re-kicks). A stall that survives to simulator
// quiescence is a true wedge — the object store's blocked probes report it
// through Simulator::BlockedEntities, and its CheckNoReservationWedge()
// PW_CHECKs with the wait-for cycle's executions named.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/logging.h"
#include "sim/simulator.h"

namespace pw::memory {

class SpillBackend {
 public:
  virtual ~SpillBackend() = default;

  // True if `device` has a queued HBM reservation that cannot currently be
  // granted.
  virtual bool HasStalledReservation(int device) const = 0;

  // Picks the least-recently-used idle resident shard on `device` and starts
  // migrating it to host DRAM; returns false if no shard is spillable (all
  // pinned / in flight / DRAM full). On completion the backend must call
  // Spiller::OnSpillComplete(device).
  virtual bool StartSpill(int device) = 0;
};

class Spiller {
 public:
  struct Options {
    bool enabled = true;
    int max_concurrent_per_device = 1;
  };

  Spiller(sim::Simulator* sim, SpillBackend* backend, Options options)
      : sim_(sim), backend_(backend), options_(options) {
    PW_CHECK(sim != nullptr && backend != nullptr);
    PW_CHECK_GT(options_.max_concurrent_per_device, 0);
  }

  Spiller(const Spiller&) = delete;
  Spiller& operator=(const Spiller&) = delete;

  // Called (synchronously, from the allocator's stall observer) whenever a
  // reservation on `device` queues or remains unserviceable after a free.
  // Defers the actual policy work to a zero-delay event so spilling never
  // reenters the allocator mid-operation.
  void OnStall(int device);

  // Called by the backend when a migration it started finishes (or aborts
  // because the buffer died mid-flight).
  void OnSpillComplete(int device);

  bool enabled() const { return options_.enabled; }
  std::int64_t spills_started() const { return spills_started_; }
  std::int64_t stall_kicks() const { return stall_kicks_; }

 private:
  void Kick(int device);

  sim::Simulator* sim_;
  SpillBackend* backend_;
  Options options_;
  std::map<int, int> inflight_;       // migrations in flight per device
  std::map<int, bool> kick_pending_;  // a zero-delay Kick is scheduled
  std::int64_t spills_started_ = 0;
  std::int64_t stall_kicks_ = 0;
};

}  // namespace pw::memory
