// Wait-for graph over opaque entity ids (executions, staged buffers).
//
// The spill subsystem builds one of these when a device has a stalled HBM
// reservation it cannot relieve: an edge a -> b means "a's front reservation
// is stalled on a device where b holds granted memory". A cycle is a true
// reservation deadlock — with reservation ordering enforced it cannot form,
// so finding one is a PW_CHECK-worthy invariant violation that names the
// culprits instead of letting the event queue drain silently.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pw::memory {

class WaitForGraph {
 public:
  void AddEdge(std::int64_t from, std::int64_t to, std::string label = "");

  bool empty() const { return edges_.empty(); }
  std::size_t num_edges() const;

  // Node ids of one cycle (first node repeated at the end), or empty if the
  // graph is acyclic. Deterministic: nodes and edges are visited in id order.
  std::vector<std::int64_t> FindCycle() const;

  // "exec 3 -> exec 5 (dev1 HBM) -> exec 3" rendering of FindCycle(); ""
  // when acyclic. `names` overrides the default "entity <id>" display name.
  std::string DescribeCycle(
      const std::map<std::int64_t, std::string>& names = {}) const;

 private:
  struct Edge {
    std::int64_t to;
    std::string label;
  };
  // from -> edges, both sides iterated in sorted order for determinism.
  std::map<std::int64_t, std::vector<Edge>> edges_;
};

}  // namespace pw::memory
