// Online statistics helpers used by benchmarks and the trace recorder.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace pw {

// Streaming mean/variance (Welford) with min/max.
class RunningStat {
 public:
  void Add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Stores samples for exact percentile queries. Suitable for the modest
// sample counts benchmarks produce (≤ millions).
class PercentileSampler {
 public:
  void Add(double x) { samples_.push_back(x); sorted_ = false; }
  std::size_t count() const { return samples_.size(); }

  // p in [0, 100]. Returns 0 for an empty sampler.
  double Percentile(double p);
  double Median() { return Percentile(50.0); }

  // Absorbs another sampler's samples (aggregating per-client recorders
  // into a fleet-wide view). `other` is unchanged.
  void Merge(const PercentileSampler& other);

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

// Fixed-bucket histogram over [lo, hi) for utilization traces.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  std::int64_t bucket_count(int i) const { return counts_.at(static_cast<std::size_t>(i)); }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  std::int64_t total() const { return total_; }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }

  // Mean of in-range samples using bucket midpoints (underflow/overflow
  // excluded); 0 when nothing landed in range.
  double MidpointMean() const;

  // True when `other` has the identical bucket layout (so Merge is legal).
  bool SameLayout(const Histogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size();
  }

  // Adds another histogram's counts; the bucket layouts must match exactly.
  void Merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
};

}  // namespace pw
