// StrongId<Tag>: a zero-cost, type-safe integer identifier. Prevents mixing
// up DeviceId / HostId / ProgramId etc. at compile time — the Pathways
// runtime routes everything by id, so this catches a whole bug class.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace pw {

template <typename Tag>
class StrongId {
 public:
  using ValueType = std::int64_t;

  constexpr StrongId() = default;  // invalid id (-1)
  constexpr explicit StrongId(ValueType value) : value_(value) {}

  constexpr ValueType value() const { return value_; }
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(StrongId a, StrongId b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(StrongId a, StrongId b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(StrongId a, StrongId b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  ValueType value_ = -1;
};

// Hands out sequential ids for a given tag. Not thread-safe; the simulator
// is single-threaded by design.
template <typename Tag>
class IdGenerator {
 public:
  StrongId<Tag> Next() { return StrongId<Tag>(next_++); }
  std::int64_t issued() const { return next_; }

 private:
  std::int64_t next_ = 0;
};

}  // namespace pw

namespace std {
template <typename Tag>
struct hash<pw::StrongId<Tag>> {
  size_t operator()(pw::StrongId<Tag> id) const noexcept {
    return std::hash<std::int64_t>{}(id.value());
  }
};
}  // namespace std
