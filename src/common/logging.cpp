#include "common/logging.h"

#include <atomic>

namespace pw {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kFatal: return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetMinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }
void SetMinLogLevel(LogLevel level) { g_min_level.store(level, std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Trim the path to the basename for readability.
  std::string_view path(file);
  const auto slash = path.find_last_of('/');
  if (slash != std::string_view::npos) path.remove_prefix(slash + 1);
  stream_ << "[" << LevelName(level) << " " << path << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal
}  // namespace pw
