#include "common/status.h"

namespace pw {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status OkStatus() { return Status(); }

namespace {
Status Make(StatusCode code, std::string_view msg) {
  return Status(code, std::string(msg));
}
}  // namespace

Status CancelledError(std::string_view m) { return Make(StatusCode::kCancelled, m); }
Status InvalidArgumentError(std::string_view m) { return Make(StatusCode::kInvalidArgument, m); }
Status DeadlineExceededError(std::string_view m) { return Make(StatusCode::kDeadlineExceeded, m); }
Status NotFoundError(std::string_view m) { return Make(StatusCode::kNotFound, m); }
Status AlreadyExistsError(std::string_view m) { return Make(StatusCode::kAlreadyExists, m); }
Status ResourceExhaustedError(std::string_view m) { return Make(StatusCode::kResourceExhausted, m); }
Status FailedPreconditionError(std::string_view m) { return Make(StatusCode::kFailedPrecondition, m); }
Status AbortedError(std::string_view m) { return Make(StatusCode::kAborted, m); }
Status OutOfRangeError(std::string_view m) { return Make(StatusCode::kOutOfRange, m); }
Status UnimplementedError(std::string_view m) { return Make(StatusCode::kUnimplemented, m); }
Status InternalError(std::string_view m) { return Make(StatusCode::kInternal, m); }
Status UnavailableError(std::string_view m) { return Make(StatusCode::kUnavailable, m); }

}  // namespace pw
