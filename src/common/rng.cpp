#include "common/rng.h"

#include <cmath>

namespace pw {

double Rng::NextExponential(double mean) {
  // Inverse CDF; clamp u away from 0 to avoid log(0).
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

double Rng::NextNormal(double mean, double stddev) {
  // Box-Muller using two fresh uniforms each call; simple and deterministic.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return mean + stddev * r * std::cos(theta);
}

}  // namespace pw
