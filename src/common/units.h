// Time and byte-size units shared by the simulator and hardware models.
//
// Simulated time is a signed 64-bit count of nanoseconds: enough range for
// ~292 years of simulation while keeping arithmetic exact (no floating-point
// clock drift). Durations and points share representation; the type system
// (TimePoint vs Duration) keeps them from being mixed incorrectly.
#pragma once

#include <cstdint>
#include <ostream>
#include <type_traits>

namespace pw {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration Nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration Micros(double us) {
    return Duration(static_cast<std::int64_t>(us * 1e3));
  }
  static constexpr Duration Millis(double ms) {
    return Duration(static_cast<std::int64_t>(ms * 1e6));
  }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.ns_ + b.ns_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.ns_ - b.ns_); }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Duration operator*(Duration a, I k) {
    return Duration(a.ns_ * static_cast<std::int64_t>(k));
  }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Duration operator*(I k, Duration a) {
    return Duration(a.ns_ * static_cast<std::int64_t>(k));
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration(static_cast<std::int64_t>(static_cast<double>(a.ns_) * k));
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Duration operator/(Duration a, I k) {
    return Duration(a.ns_ / static_cast<std::int64_t>(k));
  }
  Duration& operator+=(Duration d) { ns_ += d.ns_; return *this; }
  Duration& operator-=(Duration d) { ns_ -= d.ns_; return *this; }

  friend constexpr bool operator==(Duration a, Duration b) { return a.ns_ == b.ns_; }
  friend constexpr bool operator!=(Duration a, Duration b) { return a.ns_ != b.ns_; }
  friend constexpr bool operator<(Duration a, Duration b) { return a.ns_ < b.ns_; }
  friend constexpr bool operator<=(Duration a, Duration b) { return a.ns_ <= b.ns_; }
  friend constexpr bool operator>(Duration a, Duration b) { return a.ns_ > b.ns_; }
  friend constexpr bool operator>=(Duration a, Duration b) { return a.ns_ >= b.ns_; }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint FromNanos(std::int64_t n) { return TimePoint(n); }
  // Sentinel for "unknown / unbounded" (e.g. DcnFabric::kHeldSentinel);
  // compares greater than every reachable simulation time.
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) / 1e3; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.ns_ + d.nanos());
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::Nanos(a.ns_ - b.ns_);
  }
  friend constexpr bool operator==(TimePoint a, TimePoint b) { return a.ns_ == b.ns_; }
  friend constexpr bool operator!=(TimePoint a, TimePoint b) { return a.ns_ != b.ns_; }
  friend constexpr bool operator<(TimePoint a, TimePoint b) { return a.ns_ < b.ns_; }
  friend constexpr bool operator<=(TimePoint a, TimePoint b) { return a.ns_ <= b.ns_; }
  friend constexpr bool operator>(TimePoint a, TimePoint b) { return a.ns_ > b.ns_; }
  friend constexpr bool operator>=(TimePoint a, TimePoint b) { return a.ns_ >= b.ns_; }

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ToMicros() << "us";
}
inline std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << t.ToMicros() << "us";
}

// Byte sizes. Plain int64 with named constructors; a strong type here would
// add friction to arithmetic-heavy cost-model code for little safety gain.
using Bytes = std::int64_t;
constexpr Bytes KiB(double k) { return static_cast<Bytes>(k * 1024.0); }
constexpr Bytes MiB(double m) { return static_cast<Bytes>(m * 1024.0 * 1024.0); }
constexpr Bytes GiB(double g) { return static_cast<Bytes>(g * 1024.0 * 1024.0 * 1024.0); }

}  // namespace pw
