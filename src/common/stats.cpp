#include "common/stats.h"

#include <cmath>

#include "common/logging.h"

namespace pw {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double PercentileSampler::Percentile(double p) {
  if (samples_.empty()) return 0.0;
  PW_CHECK_GE(p, 0.0);
  PW_CHECK_LE(p, 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void PercentileSampler::Merge(const PercentileSampler& other) {
  if (&other == this) {
    // Self-insert of a vector range is UB under reallocation, and doubling
    // the sample multiset changes no percentile — nothing to do.
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(buckets), 0) {
  PW_CHECK_GT(buckets, 0);
  PW_CHECK_LT(lo, hi);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  // Index by bucket width, not by fraction-of-range: (x/(hi-lo))*buckets
  // double-rounds, and for integer samples in unit-width buckets (queue
  // depths) the rounding can push a sample one bucket low — e.g. lo=0,
  // hi=22, 22 buckets, x=15 lands in bucket 14. Dividing by the width keeps
  // unit-width integer bucketing exact.
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

double Histogram::MidpointMean() const {
  const std::int64_t in_range = total_ - underflow_ - overflow_;
  if (in_range <= 0) return 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    sum += static_cast<double>(counts_[i]) *
           (lo_ + (static_cast<double>(i) + 0.5) * width);
  }
  return sum / static_cast<double>(in_range);
}

void Histogram::Merge(const Histogram& other) {
  PW_CHECK(SameLayout(other))
      << "Histogram::Merge requires identical bucket layouts";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

}  // namespace pw
