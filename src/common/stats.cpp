#include "common/stats.h"

#include <cmath>

#include "common/logging.h"

namespace pw {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double PercentileSampler::Percentile(double p) {
  if (samples_.empty()) return 0.0;
  PW_CHECK_GE(p, 0.0);
  PW_CHECK_LE(p, 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(buckets), 0) {
  PW_CHECK_GT(buckets, 0);
  PW_CHECK_LT(lo, hi);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

}  // namespace pw
