// Lightweight logging and invariant-checking macros.
//
// PW_CHECK* terminate the process on violation — they guard programming
// errors (broken invariants), not recoverable conditions (use pw::Status).
// PW_LOG(level) streams to stderr; verbosity is controlled globally so
// benchmarks can silence info logs.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace pw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Global minimum level actually emitted. Defaults to kWarning so tests and
// benches are quiet; examples raise it to kInfo.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows streamed operands when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

}  // namespace internal
}  // namespace pw

#define PW_LOG(level)                                                      \
  if (::pw::LogLevel::level < ::pw::GetMinLogLevel()) {                    \
  } else                                                                   \
    ::pw::internal::LogMessage(::pw::LogLevel::level, __FILE__, __LINE__)  \
        .stream()

#define PW_CHECK(cond)                                                       \
  if (cond) {                                                                \
  } else                                                                     \
    ::pw::internal::LogMessage(::pw::LogLevel::kFatal, __FILE__, __LINE__)   \
            .stream()                                                        \
        << "Check failed: " #cond " "

#define PW_CHECK_OP_(a, b, op)                                           \
  PW_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define PW_CHECK_EQ(a, b) PW_CHECK_OP_(a, b, ==)
#define PW_CHECK_NE(a, b) PW_CHECK_OP_(a, b, !=)
#define PW_CHECK_LT(a, b) PW_CHECK_OP_(a, b, <)
#define PW_CHECK_LE(a, b) PW_CHECK_OP_(a, b, <=)
#define PW_CHECK_GT(a, b) PW_CHECK_OP_(a, b, >)
#define PW_CHECK_GE(a, b) PW_CHECK_OP_(a, b, >=)

#define PW_CHECK_OK(expr)                                 \
  do {                                                    \
    const auto& pw_check_ok_status_ = (expr);             \
    PW_CHECK(pw_check_ok_status_.ok())                    \
        << pw_check_ok_status_.ToString();                \
  } while (0)
