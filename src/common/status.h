// Minimal Status / StatusOr error-handling vocabulary, modeled on
// absl::Status. Used across the Pathways reproduction for recoverable
// errors (resource exhaustion, invalid programs, lost clients); programming
// errors use PW_CHECK from logging.h instead.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace pw {

enum class StatusCode {
  kOk = 0,
  kCancelled = 1,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kNotFound = 5,
  kAlreadyExists = 6,
  kResourceExhausted = 8,
  kFailedPrecondition = 9,
  kAborted = 10,
  kOutOfRange = 11,
  kUnimplemented = 12,
  kInternal = 13,
  kUnavailable = 14,
};

std::string_view StatusCodeName(StatusCode code);

// Value-semantic error descriptor. An engaged message is only stored for
// non-OK statuses; OK carries no allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

Status OkStatus();
Status CancelledError(std::string_view msg);
Status InvalidArgumentError(std::string_view msg);
Status DeadlineExceededError(std::string_view msg);
Status NotFoundError(std::string_view msg);
Status AlreadyExistsError(std::string_view msg);
Status ResourceExhaustedError(std::string_view msg);
Status FailedPreconditionError(std::string_view msg);
Status AbortedError(std::string_view msg);
Status OutOfRangeError(std::string_view msg);
Status UnimplementedError(std::string_view msg);
Status InternalError(std::string_view msg);
Status UnavailableError(std::string_view msg);

// StatusOr<T>: either a value or a non-OK Status. Accessing the value of an
// errored StatusOr is a programming error (asserts in debug builds).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(const T& value) : rep_(value) {}          // NOLINT(implicit)
  StatusOr(T&& value) : rep_(std::move(value)) {}    // NOLINT(implicit)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(implicit)
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr must not be constructed from OK without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> rep_;
};

// Propagation helpers in the style of absl.
#define PW_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::pw::Status pw_status_tmp_ = (expr);          \
    if (!pw_status_tmp_.ok()) return pw_status_tmp_; \
  } while (0)

#define PW_CONCAT_INNER_(a, b) a##b
#define PW_CONCAT_(a, b) PW_CONCAT_INNER_(a, b)

#define PW_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto PW_CONCAT_(pw_statusor_, __LINE__) = (expr);           \
  if (!PW_CONCAT_(pw_statusor_, __LINE__).ok())               \
    return PW_CONCAT_(pw_statusor_, __LINE__).status();       \
  lhs = std::move(PW_CONCAT_(pw_statusor_, __LINE__)).value()

}  // namespace pw
