// Monotonic chunked arena allocator.
//
// An Arena hands out pointers by bumping a cursor through geometrically
// growing chunks; individual objects are never freed. Reset() rewinds the
// cursor to the first chunk (keeping the memory), which is the intended
// steady-state pattern: allocate a wave of short-lived objects, consume
// them, rewind. That turns N malloc/free pairs per wave into zero once the
// chunk list has warmed up — the same idiom large simulators use for
// per-partition event/shard scratch state, and what the partitioned engine
// uses for per-LP workload records (one arena per LP, so no cross-thread
// contention and no shared allocator lock on the hot path).
//
// New<T>() requires trivially destructible T: the arena never runs
// destructors, and enforcing this at compile time prevents leak-by-design
// mistakes (e.g. arena-allocating a std::vector).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace pw::common {

class Arena {
 public:
  // First chunk size; subsequent chunks double up to kMaxChunkBytes.
  static constexpr std::size_t kMinChunkBytes = 4 << 10;
  static constexpr std::size_t kMaxChunkBytes = 1 << 20;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw allocation; align must be a power of two <= alignof(max_align_t).
  void* Allocate(std::size_t bytes, std::size_t align) {
    PW_CHECK(align != 0 && (align & (align - 1)) == 0);
    std::size_t p = (cursor_ + align - 1) & ~(align - 1);
    if (chunk_ >= chunks_.size() || p + bytes > chunks_[chunk_].size) {
      NextChunk(bytes + align);
      p = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = p + bytes;
    bytes_allocated_ += bytes;
    return chunks_[chunk_].data.get() + p;
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    void* p = Allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  // Contiguous array of default-initialized T.
  template <typename T>
  T* NewArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    void* p = Allocate(sizeof(T) * n, alignof(T));
    return ::new (p) T[n]();
  }

  // Rewinds to empty, keeping every chunk for reuse.
  void Reset() {
    chunk_ = 0;
    cursor_ = 0;
    bytes_allocated_ = 0;
  }

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  std::size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  // Moves the cursor to the next chunk that fits `need` bytes, allocating a
  // fresh (geometrically grown) chunk if none does.
  void NextChunk(std::size_t need) {
    while (chunk_ + 1 < chunks_.size()) {
      ++chunk_;
      cursor_ = 0;
      if (need <= chunks_[chunk_].size) return;
    }
    std::size_t size = chunks_.empty() ? kMinChunkBytes
                                       : chunks_.back().size * 2;
    if (size > kMaxChunkBytes) size = kMaxChunkBytes;
    if (size < need) size = need;
    chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
    chunk_ = chunks_.size() - 1;
    cursor_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // index of the chunk the cursor lives in
  std::size_t cursor_ = 0;  // offset into chunks_[chunk_]
  std::size_t bytes_allocated_ = 0;
};

}  // namespace pw::common

