// Deterministic, seedable RNG (splitmix64 + xoshiro256**). The simulation
// must be bit-reproducible across runs and platforms, so we avoid
// std::mt19937's distribution non-portability and own the whole stack.
#pragma once

#include <cstdint>

namespace pw {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 to spread the seed across the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  // Uniform 64-bit value.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = NextU64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<unsigned __int128>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Exponentially distributed with the given mean (for jitter models).
  double NextExponential(double mean);

  // Normal (Box-Muller, deterministic pairing).
  double NextNormal(double mean, double stddev);

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace pw
