// Analytic cost model for collective operations over an interconnect.
//
// The simulator does not move real bytes for collectives; it charges the
// time a bandwidth-optimal algorithm would take:
//   ring all-reduce:      2·(n−1)/n · B / bw   +  2·(n−1) · hop_latency
//   ring all-gather:        (n−1)/n · B / bw   +    (n−1) · hop_latency
//   ring reduce-scatter:    (n−1)/n · B / bw   +    (n−1) · hop_latency
//   tree (latency-bound):   ceil(log2 n) phases of hop_latency
// Small transfers are latency-bound: for each algorithm we take the max of
// the bandwidth term and a latency floor, plus a fixed per-collective launch
// cost. TPU ICI uses a torus, whose ring embedding matches this model; the
// same code with DCN parameters models cross-host GPU collectives (NCCL
// rings over DCN) for the Ray baseline.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "common/units.h"

namespace pw::net {

enum class CollectiveKind { kAllReduce, kAllGather, kReduceScatter, kBroadcast };

// Latency scaling of the interconnect with participant count:
//   kTree:    ceil(log2 n) hops — switch-based fabrics with tree reductions.
//   kTorus2D: 2*(ceil(sqrt(n))-1) hops — TPU-style 2D torus (ring of rings).
//   kRing:    (n-1) hops — flat rings (NCCL over DCN, GPU baseline).
enum class LatencyTopology { kTree, kTorus2D, kRing };

struct CollectiveParams {
  Duration hop_latency = Duration::Micros(1);   // per-hop wire+switch latency
  double link_bandwidth = 100e9;                // bytes/sec per direction
  Duration launch_overhead = Duration::Micros(2);  // fixed per-collective cost
  LatencyTopology topology = LatencyTopology::kTorus2D;
};

class CollectiveModel {
 public:
  explicit CollectiveModel(CollectiveParams params) : params_(params) {
    PW_CHECK_GT(params_.link_bandwidth, 0.0);
  }
  CollectiveModel() : CollectiveModel(CollectiveParams{}) {}
  virtual ~CollectiveModel() = default;

  const CollectiveParams& params() const { return params_; }

  // Time for `kind` over `bytes` payload per participant among n
  // participants. Virtual so a topology-aware model (FlowCollectiveModel,
  // net/flow.h) can reprice collectives from link-level flows while every
  // call site keeps this interface; the base implementation is the analytic
  // formula above.
  virtual Duration Time(CollectiveKind kind, Bytes bytes, int n) const {
    PW_CHECK_GE(n, 1);
    PW_CHECK_GE(bytes, 0);
    if (n == 1) return params_.launch_overhead;  // degenerate: local only

    const double b = static_cast<double>(bytes);
    const double bw = params_.link_bandwidth;
    double bw_fraction = 0.0;  // multiples of B/bw moved over the ring
    switch (kind) {
      case CollectiveKind::kAllReduce:
        bw_fraction = 2.0 * static_cast<double>(n - 1) / static_cast<double>(n);
        break;
      case CollectiveKind::kAllGather:
      case CollectiveKind::kReduceScatter:
        bw_fraction = static_cast<double>(n - 1) / static_cast<double>(n);
        break;
      case CollectiveKind::kBroadcast:
        bw_fraction = 1.0;
        break;
    }
    const Duration bandwidth_term = Duration::Seconds(bw_fraction * b / bw);

    int base_hops = 0;
    switch (params_.topology) {
      case LatencyTopology::kTree:
        base_hops = static_cast<int>(std::ceil(std::log2(static_cast<double>(n))));
        break;
      case LatencyTopology::kTorus2D:
        base_hops = 2 * (static_cast<int>(std::ceil(
                             std::sqrt(static_cast<double>(n)))) -
                         1);
        break;
      case LatencyTopology::kRing:
        base_hops = n - 1;
        break;
    }
    base_hops = std::max(base_hops, 1);
    // AllReduce = reduce phase + broadcast phase.
    const int latency_hops =
        (kind == CollectiveKind::kAllReduce) ? 2 * base_hops : base_hops;
    const Duration latency_term = params_.hop_latency * latency_hops;

    return params_.launch_overhead + std::max(bandwidth_term, latency_term);
  }

  Duration AllReduce(Bytes bytes, int n) const {
    return Time(CollectiveKind::kAllReduce, bytes, n);
  }
  Duration AllGather(Bytes bytes, int n) const {
    return Time(CollectiveKind::kAllGather, bytes, n);
  }
  Duration ReduceScatter(Bytes bytes, int n) const {
    return Time(CollectiveKind::kReduceScatter, bytes, n);
  }

 private:
  CollectiveParams params_;
};

}  // namespace pw::net
