#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace pw::net {

namespace {

// Deterministic ECMP: integer hash of (src, dst), stable across platforms.
std::uint64_t MixPair(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

// ---------------------------------------------------------------------------
// TorusTopology

TorusTopology::TorusTopology(Topology* topo, std::vector<int> dims,
                             double link_bandwidth,
                             const std::string& name_prefix)
    : topo_(topo), dims_(std::move(dims)) {
  PW_CHECK(topo_ != nullptr);
  PW_CHECK(dims_.size() == 2 || dims_.size() == 3)
      << "torus must be 2D or 3D, got " << dims_.size() << "D";
  num_nodes_ = 1;
  for (int d : dims_) {
    PW_CHECK_GE(d, 1);
    num_nodes_ *= d;
  }
  const int ndims = static_cast<int>(dims_.size());
  links_.resize(static_cast<std::size_t>(num_nodes_) * ndims * 2);
  for (int node = 0; node < num_nodes_; ++node) {
    for (int dim = 0; dim < ndims; ++dim) {
      for (int dir = 0; dir < 2; ++dir) {
        const std::string name = name_prefix + ":n" + std::to_string(node) +
                                 ":d" + std::to_string(dim) +
                                 (dir == 0 ? "+" : "-");
        links_[static_cast<std::size_t>(node) * ndims * 2 + dim * 2 + dir] =
            topo_->AddLink(name, link_bandwidth);
      }
    }
  }

  // Snake order: walk dimension 0 outermost; within each slab, traverse the
  // remaining dimensions forward or reversed alternately so consecutive
  // entries always differ by one coordinate step.
  ring_order_.reserve(static_cast<std::size_t>(num_nodes_));
  std::vector<int> sub;  // snake order of one (ndims-1)-dim slab
  if (ndims == 2) {
    sub.resize(static_cast<std::size_t>(dims_[1]));
    for (int i = 0; i < dims_[1]; ++i) sub[static_cast<std::size_t>(i)] = i;
  } else {
    sub.reserve(static_cast<std::size_t>(dims_[1] * dims_[2]));
    for (int j = 0; j < dims_[1]; ++j) {
      for (int k = 0; k < dims_[2]; ++k) {
        sub.push_back(j * dims_[2] + (j % 2 == 0 ? k : dims_[2] - 1 - k));
      }
    }
  }
  const int slab = num_nodes_ / dims_[0];
  for (int i = 0; i < dims_[0]; ++i) {
    for (int s = 0; s < slab; ++s) {
      const int within =
          sub[static_cast<std::size_t>(i % 2 == 0 ? s : slab - 1 - s)];
      ring_order_.push_back(i * slab + within);
    }
  }
}

std::vector<int> TorusTopology::BalancedDims(int nodes, int ndims) {
  PW_CHECK_GE(nodes, 1);
  PW_CHECK(ndims == 2 || ndims == 3);
  if (ndims == 2) {
    int a = static_cast<int>(std::sqrt(static_cast<double>(nodes)));
    while (a > 1 && nodes % a != 0) --a;
    return {a, nodes / a};
  }
  int a = static_cast<int>(std::cbrt(static_cast<double>(nodes)));
  while (a > 1 && nodes % a != 0) --a;
  std::vector<int> rest = BalancedDims(nodes / a, 2);
  return {a, rest[0], rest[1]};
}

LinkIndex TorusTopology::LinkFrom(int node, int dim, bool positive) const {
  const int ndims = static_cast<int>(dims_.size());
  return links_[static_cast<std::size_t>(node) * ndims * 2 + dim * 2 +
                (positive ? 0 : 1)];
}

std::vector<int> TorusTopology::Coords(int node) const {
  std::vector<int> c(dims_.size());
  for (int dim = static_cast<int>(dims_.size()) - 1; dim >= 0; --dim) {
    c[static_cast<std::size_t>(dim)] = node % dims_[static_cast<std::size_t>(dim)];
    node /= dims_[static_cast<std::size_t>(dim)];
  }
  return c;
}

int TorusTopology::NodeAt(const std::vector<int>& coords) const {
  int node = 0;
  for (std::size_t dim = 0; dim < dims_.size(); ++dim) {
    node = node * dims_[dim] + coords[dim];
  }
  return node;
}

std::vector<LinkIndex> TorusTopology::Path(int src, int dst) const {
  PW_CHECK(src >= 0 && src < num_nodes_);
  PW_CHECK(dst >= 0 && dst < num_nodes_);
  std::vector<LinkIndex> path;
  if (src == dst) return path;
  std::vector<int> cur = Coords(src);
  const std::vector<int> goal = Coords(dst);
  for (std::size_t dim = 0; dim < dims_.size(); ++dim) {
    const int size = dims_[dim];
    const int fwd = ((goal[dim] - cur[dim]) % size + size) % size;
    const int bwd = size - fwd;
    // Minimal route along this dimension; ties go positive.
    const bool positive = fwd != 0 && fwd <= bwd;
    const int hops = std::min(fwd, bwd);
    for (int h = 0; h < hops; ++h) {
      path.push_back(LinkFrom(NodeAt(cur), static_cast<int>(dim), positive));
      cur[dim] = ((cur[dim] + (positive ? 1 : -1)) % size + size) % size;
    }
  }
  return path;
}

int TorusTopology::Distance(int src, int dst) const {
  return static_cast<int>(Path(src, dst).size());
}

// ---------------------------------------------------------------------------
// ClosTopology

ClosTopology::ClosTopology(Topology* topo, Params params)
    : topo_(topo), params_(params) {
  PW_CHECK(topo_ != nullptr);
  PW_CHECK_GE(params_.hosts_per_leaf, 1);
  PW_CHECK_GE(params_.num_spines, 1);
  PW_CHECK_GT(params_.host_bandwidth, 0.0);
  if (params_.spine_bandwidth > 0) {
    spine_bandwidth_ = params_.spine_bandwidth;
  } else {
    PW_CHECK_GT(params_.oversubscription, 0.0);
    spine_bandwidth_ = params_.hosts_per_leaf * params_.host_bandwidth /
                       (params_.num_spines * params_.oversubscription);
  }
}

double ClosTopology::oversubscription() const {
  return params_.hosts_per_leaf * params_.host_bandwidth /
         (params_.num_spines * spine_bandwidth_);
}

int ClosTopology::AddHost() {
  const int host = num_hosts_++;
  const int leaf = LeafOf(host);
  if (leaf >= static_cast<int>(leaves_.size())) {
    Leaf l;
    for (int s = 0; s < params_.num_spines; ++s) {
      l.up.push_back(topo_->AddLink(
          "dcn:l" + std::to_string(leaf) + ">s" + std::to_string(s),
          spine_bandwidth_));
      l.down.push_back(topo_->AddLink(
          "dcn:s" + std::to_string(s) + ">l" + std::to_string(leaf),
          spine_bandwidth_));
    }
    leaves_.push_back(std::move(l));
  }
  host_up_.push_back(topo_->AddLink("dcn:h" + std::to_string(host) + ">l",
                                    params_.host_bandwidth));
  host_down_.push_back(topo_->AddLink("dcn:l>h" + std::to_string(host),
                                      params_.host_bandwidth));
  return host;
}

LinkIndex ClosTopology::host_up(int host) const {
  PW_CHECK(host >= 0 && host < num_hosts_);
  return host_up_[static_cast<std::size_t>(host)];
}

LinkIndex ClosTopology::host_down(int host) const {
  PW_CHECK(host >= 0 && host < num_hosts_);
  return host_down_[static_cast<std::size_t>(host)];
}

std::vector<LinkIndex> ClosTopology::Path(int src_host, int dst_host) const {
  PW_CHECK(src_host >= 0 && src_host < num_hosts_);
  PW_CHECK(dst_host >= 0 && dst_host < num_hosts_);
  std::vector<LinkIndex> path;
  path.push_back(host_up(src_host));
  const int src_leaf = LeafOf(src_host);
  const int dst_leaf = LeafOf(dst_host);
  if (src_leaf != dst_leaf) {
    const int spine = static_cast<int>(
        MixPair(static_cast<std::uint64_t>(src_host),
                static_cast<std::uint64_t>(dst_host)) %
        static_cast<std::uint64_t>(params_.num_spines));
    path.push_back(
        leaves_[static_cast<std::size_t>(src_leaf)].up[static_cast<std::size_t>(spine)]);
    path.push_back(
        leaves_[static_cast<std::size_t>(dst_leaf)].down[static_cast<std::size_t>(spine)]);
  }
  path.push_back(host_down(dst_host));
  return path;
}

}  // namespace pw::net
