#include "net/lp_channel.h"

#include <algorithm>

namespace pw::net {

LpChannelMap::LpChannelMap(sim::PartitionedSimulator* psim,
                           LpChannelParams params)
    : psim_(psim), params_(params) {
  PW_CHECK_GT(params_.bandwidth, 0.0);
  PW_CHECK_GE(params_.latency.nanos(), psim_->lookahead().nanos())
      << "channel latency below the engine lookahead would let a message "
         "arrive inside an already-executed window";
  const std::size_t n = static_cast<std::size_t>(psim_->num_lps());
  src_.resize(n);
  for (SrcState& s : src_) {
    s.pairs.resize(n);
    s.cut.assign(n, 0);
  }
  delivered_.assign(n, 0);
}

TimePoint LpChannelMap::Send(int src, int dst, Bytes bytes,
                             std::function<void()> on_delivered) {
  PW_CHECK(src != dst) << "LpChannelMap is the cross-LP path only";
  ++src_[static_cast<std::size_t>(src)].messages_sent;
  return Route(src, dst, bytes, std::move(on_delivered), kFreshSend);
}

TimePoint LpChannelMap::Route(int src, int dst, Bytes bytes,
                              std::function<void()> on_delivered,
                              std::uint64_t replay_seq) {
  SrcState& s = src_[static_cast<std::size_t>(src)];
  if (s.cut[static_cast<std::size_t>(src)] ||
      s.cut[static_cast<std::size_t>(dst)]) {
    HeldMessage m{dst, bytes, std::move(on_delivered),
                  replay_seq == kFreshSend ? s.next_hold_seq++ : replay_seq};
    Hold(s, std::move(m));
    return kHeldSentinel;
  }
  PairState& pair = s.pairs[static_cast<std::size_t>(dst)];
  const std::int64_t now_ns = psim_->lp(src).now().nanos();
  const std::int64_t start = std::max(now_ns, pair.next_free_ns);
  const double scale = s.bandwidth_scale;
  const double bw =
      scale == 1.0 ? params_.bandwidth : params_.bandwidth * scale;
  const Duration xmit = Duration::Seconds(
      static_cast<double>(bytes + params_.per_message_header) / bw);
  pair.next_free_ns = start + xmit.nanos();
  const TimePoint delivered =
      TimePoint::FromNanos(start + xmit.nanos() + params_.latency.nanos());
  std::int64_t* delivered_slot = &delivered_[static_cast<std::size_t>(dst)];
  psim_->SendAt(src, dst, delivered,
                [fn = std::move(on_delivered), delivered_slot] {
                  ++*delivered_slot;
                  if (fn) fn();
                });
  return delivered;
}

void LpChannelMap::Hold(SrcState& s, HeldMessage m) {
  // Stamp-position insertion (fresh sends carry the highest stamp so far,
  // so this is O(1) appends in the common case; a replay re-held because
  // its peer is still cut lands back in original order).
  auto it = s.held.end();
  while (it != s.held.begin() && std::prev(it)->seq > m.seq) --it;
  s.held.insert(it, std::move(m));
}

void LpChannelMap::SetCut(int src, int lp, bool cut) {
  SrcState& s = src_[static_cast<std::size_t>(src)];
  s.cut[static_cast<std::size_t>(lp)] = cut ? 1 : 0;
  if (!cut) ReplayHeld(src);
}

void LpChannelMap::ReplayHeld(int src) {
  SrcState& s = src_[static_cast<std::size_t>(src)];
  if (s.held.empty()) return;
  std::vector<HeldMessage> replay;
  replay.swap(s.held);
  // Route() re-holds (in stamp position) any message whose other endpoint
  // is still cut; the rest serialize onto the wire at heal time in original
  // send order.
  for (HeldMessage& m : replay) {
    if (s.cut[static_cast<std::size_t>(src)]) {
      Hold(s, std::move(m));
      continue;
    }
    Route(src, m.dst, m.bytes, std::move(m.on_delivered), m.seq);
  }
}

void LpChannelMap::SchedulePartition(int lp, TimePoint at, TimePoint heal) {
  PW_CHECK_GT(heal.nanos(), at.nanos());
  for (int src = 0; src < psim_->num_lps(); ++src) {
    psim_->lp(src).ScheduleAt(at, [this, src, lp] { SetCut(src, lp, true); });
    psim_->lp(src).ScheduleAt(heal,
                              [this, src, lp] { SetCut(src, lp, false); });
  }
}

void LpChannelMap::ScheduleDegrade(int src, double scale, TimePoint at,
                                   TimePoint restore) {
  PW_CHECK_GT(scale, 0.0);
  PW_CHECK_GT(restore.nanos(), at.nanos());
  psim_->lp(src).ScheduleAt(at, [this, src, scale] {
    src_[static_cast<std::size_t>(src)].bandwidth_scale = scale;
  });
  psim_->lp(src).ScheduleAt(restore, [this, src] {
    src_[static_cast<std::size_t>(src)].bandwidth_scale = 1.0;
  });
}

std::int64_t LpChannelMap::messages_sent() const {
  std::int64_t total = 0;
  for (const SrcState& s : src_) total += s.messages_sent;
  return total;
}

std::int64_t LpChannelMap::messages_delivered() const {
  std::int64_t total = 0;
  for (std::int64_t d : delivered_) total += d;
  return total;
}

std::size_t LpChannelMap::messages_held() const {
  std::size_t total = 0;
  for (const SrcState& s : src_) total += s.held.size();
  return total;
}

Bytes LpChannelMap::held_bytes() const {
  Bytes total = 0;
  for (const SrcState& s : src_) {
    for (const HeldMessage& m : s.held) total += m.bytes;
  }
  return total;
}

}  // namespace pw::net
