// Timestamped inter-LP channels: the partition boundary's data path.
//
// When a run executes islands as logical processes (sim/partition.h), all
// cross-island traffic — DCN sends, disagg KV transfers, fault
// partition/heal replay — must flow through an explicitly timestamped
// channel instead of touching a peer island's state directly. LpChannelMap
// provides that path with the same semantics the serial DcnFabric gives
// cross-island messages:
//
//   * per-pair serialization: each directed (src, dst) pair owns an egress
//     cursor; messages queue behind each other at bandwidth, then pay the
//     fabric latency;
//   * per-pair FIFO: serialization makes delivery times per pair
//     non-decreasing, and the engine's deterministic merge (delivery time,
//     source LP, per-source send seq) breaks any remaining tie in send
//     order — so receivers observe sends in order, exactly once;
//   * partitions hold, heals replay in original send order: cutting an LP
//     parks messages from/to it on the *sender's* hold queue (stamp-ordered,
//     mirroring DcnFabric::Hold) and a heal re-submits them at heal time;
//   * degrades scale a source's egress bandwidth for transfers started
//     after the change.
//
// Ownership discipline (the reason this is race-free and deterministic):
// every piece of channel state for pair (src, dst) — cursor, degrade scale,
// hold queue, and the local view of which peers are cut — lives on the
// source LP and is only touched from events executing on that LP. Fault
// timelines are pre-scheduled onto every LP at setup (SchedulePartition /
// ScheduleDegrade), so partition state never needs a cross-LP read: each LP
// applies the same toggle when its own clock reaches the fault time. The
// only cross-LP effect is the delivery event, routed through
// PartitionedSimulator::SendAt — legal because delivery is always at least
// `latency` in the future, and `latency` must be >= the engine's lookahead
// (DcnFabric::MinCrossIslandLatency is the physical floor for both).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "sim/partition.h"

namespace pw::net {

struct LpChannelParams {
  Duration latency = Duration::Micros(20);  // one-way, >= engine lookahead
  double bandwidth = 12.5e9;                // bytes/sec per directed pair
  Bytes per_message_header = 128;           // framing overhead per message
};

class LpChannelMap {
 public:
  // Returned by Send() when the message was held by a partition (no usable
  // delivery estimate exists until the heal), mirroring DcnFabric.
  static constexpr TimePoint kHeldSentinel = TimePoint::Max();

  LpChannelMap(sim::PartitionedSimulator* psim, LpChannelParams params);

  LpChannelMap(const LpChannelMap&) = delete;
  LpChannelMap& operator=(const LpChannelMap&) = delete;

  // Sends `bytes` from LP src to LP dst; on_delivered runs on LP dst at
  // arrival. Must be invoked from an event executing on LP src (or from
  // setup before the run). Returns the delivery time, or kHeldSentinel when
  // a partition held the message.
  TimePoint Send(int src, int dst, Bytes bytes,
                 std::function<void()> on_delivered);

  // Immediately toggles `lp`'s cut state as seen from `src`. Must run on LP
  // src. A heal (cut = false) replays src's held messages whose endpoints
  // are all reachable again, in original send order.
  void SetCut(int src, int lp, bool cut);

  // Pre-schedules (at setup) the partition of `lp` over [at, heal) onto
  // every LP's local timeline, so all senders observe the cut at identical
  // simulated times regardless of thread count.
  void SchedulePartition(int lp, TimePoint at, TimePoint heal);

  // Scales LP src's egress bandwidth (all pairs from src) over
  // [at, restore); applies to transfers started inside the window.
  void ScheduleDegrade(int src, double scale, TimePoint at, TimePoint restore);

  const LpChannelParams& params() const { return params_; }

  // Telemetry. Safe to read between runs (src-side counters are written by
  // their owning LP; delivered counters by the destination LP).
  std::int64_t messages_sent() const;        // includes held-then-replayed once
  std::int64_t messages_delivered() const;
  std::size_t messages_held() const;         // currently parked by partitions
  Bytes held_bytes() const;
  std::int64_t delivered_to(int dst) const {
    return delivered_[static_cast<std::size_t>(dst)];
  }

 private:
  struct HeldMessage {
    int dst;
    Bytes bytes;
    std::function<void()> on_delivered;
    std::uint64_t seq;  // fabric-order stamp; replay preserves it
  };
  struct PairState {
    std::int64_t next_free_ns = 0;  // egress serialization cursor
  };
  // Everything a source LP owns. Only events on that LP may touch it.
  struct SrcState {
    std::vector<PairState> pairs;  // indexed by dst
    std::vector<char> cut;         // local view: is LP j unreachable?
    std::vector<HeldMessage> held; // stamp-ordered hold queue
    double bandwidth_scale = 1.0;
    std::int64_t messages_sent = 0;
    // Send-order stamp for this source's hold queue. Per-source (not
    // fabric-wide like DcnFabric's) because sources run on different
    // threads; per-pair FIFO only needs order within a source anyway.
    std::uint64_t next_hold_seq = 0;
  };

  static constexpr std::uint64_t kFreshSend = ~std::uint64_t{0};

  // Send minus double-counting, carrying a replayed message's stamp.
  TimePoint Route(int src, int dst, Bytes bytes,
                  std::function<void()> on_delivered, std::uint64_t replay_seq);
  void Hold(SrcState& s, HeldMessage m);
  void ReplayHeld(int src);

  sim::PartitionedSimulator* psim_;
  LpChannelParams params_;
  std::vector<SrcState> src_;
  std::vector<std::int64_t> delivered_;  // indexed by dst, written by dst LP
};

}  // namespace pw::net
