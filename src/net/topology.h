// Explicit network topologies for flow-level modeling (docs/NETWORK.md).
//
// A Topology is a table of directed links, each with a nominal bandwidth
// and a fault-injection scale; concrete builders append their links to one
// and hand out routes as ordered link-index lists:
//
//   * TorusTopology — a 2D/3D torus (TPU-style ICI). Routing is
//     dimension-ordered and minimal, with ties broken toward the positive
//     direction, so every (src, dst) pair has exactly one deterministic
//     path. ring_order() enumerates nodes in snake (boustrophedon) order:
//     consecutive nodes are torus neighbors, which is how ring collectives
//     embed with near-disjoint links.
//   * ClosTopology — a two-tier leaf/spine Clos (the DCN). Every host owns
//     an up and a down access link to its leaf (the NIC, where incast
//     bites); leaves connect to every spine with links whose bandwidth
//     encodes the oversubscription ratio. Cross-leaf routes pick a spine by
//     a deterministic ECMP hash of (src, dst).
//
// The same Topology instance backs both the dynamic FlowNetwork
// (net/flow.h) and the static FlowCollectiveModel phase solver, so a
// degraded link slows every consumer consistently. SetLinkScale bumps a
// generation counter that lets solvers cache per-topology results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace pw::net {

using LinkIndex = std::int32_t;

struct TopoLink {
  std::string name;
  double bandwidth = 0;  // bytes/sec, per direction
  double scale = 1.0;    // fault knob; effective bandwidth = bandwidth*scale
};

class Topology {
 public:
  Topology() = default;
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  LinkIndex AddLink(std::string name, double bandwidth) {
    PW_CHECK_GT(bandwidth, 0.0) << "link " << name;
    links_.push_back(TopoLink{std::move(name), bandwidth, 1.0});
    return static_cast<LinkIndex>(links_.size() - 1);
  }

  std::size_t num_links() const { return links_.size(); }
  const TopoLink& link(LinkIndex i) const {
    return links_[static_cast<std::size_t>(i)];
  }
  double EffectiveBandwidth(LinkIndex i) const {
    const TopoLink& l = links_[static_cast<std::size_t>(i)];
    // Exact-bypass at 1.0, same idiom as Link::EffectiveBandwidth: unfaulted
    // runs are bit-identical to builds without the knob.
    return l.scale == 1.0 ? l.bandwidth : l.bandwidth * l.scale;
  }

  // Fault-injection knob (0 < scale; < 1 degrades one edge). Bumps the
  // generation so cached solver results invalidate.
  void SetLinkScale(LinkIndex i, double scale) {
    PW_CHECK_GT(scale, 0.0);
    links_[static_cast<std::size_t>(i)].scale = scale;
    ++generation_;
  }
  double link_scale(LinkIndex i) const {
    return links_[static_cast<std::size_t>(i)].scale;
  }
  std::uint64_t generation() const { return generation_; }

 private:
  std::vector<TopoLink> links_;
  std::uint64_t generation_ = 0;
};

// Opt-in flow-level ICI (hw::SystemParams::ici_flow). Defaults off: the
// analytic CollectiveModel stays in effect and runs are bit-identical to
// builds without the flow engine.
struct IciFlowParams {
  bool enabled = false;
  int dims = 2;               // 2 => 2D torus, 3 => 3D torus
  double link_bandwidth = 0;  // per direction; 0 => CollectiveParams value
};

class TorusTopology {
 public:
  // Appends 2*dims directed links per node to `topo` (one per direction per
  // dimension; a size-1 or size-2 dimension still gets both wrap links).
  TorusTopology(Topology* topo, std::vector<int> dims, double link_bandwidth,
                const std::string& name_prefix = "ici");

  // Factors `nodes` into `ndims` balanced dimensions (largest divisor pair /
  // triple); a prime count degenerates to a 1 x n ring, which is still a
  // valid torus.
  static std::vector<int> BalancedDims(int nodes, int ndims);

  int num_nodes() const { return num_nodes_; }
  const std::vector<int>& dims() const { return dims_; }

  // The directed link leaving `node` along `dim`, toward the neighbor with
  // the next-higher (positive) or next-lower coordinate, wrapping.
  LinkIndex LinkFrom(int node, int dim, bool positive) const;

  // Dimension-ordered minimal route; empty for src == dst.
  std::vector<LinkIndex> Path(int src, int dst) const;
  int Distance(int src, int dst) const;

  // Snake enumeration of all nodes: consecutive entries are torus
  // neighbors. Ring collectives run over the first n entries.
  const std::vector<int>& ring_order() const { return ring_order_; }

 private:
  std::vector<int> Coords(int node) const;
  int NodeAt(const std::vector<int>& coords) const;

  Topology* topo_;
  std::vector<int> dims_;
  int num_nodes_;
  std::vector<LinkIndex> links_;  // [node][dim][dir]
  std::vector<int> ring_order_;
};

class ClosTopology {
 public:
  struct Params {
    int hosts_per_leaf = 8;
    int num_spines = 4;
    double host_bandwidth = 12.5e9;  // host<->leaf access links (the NIC)
    // Per leaf<->spine link; 0 derives it from `oversubscription` so that
    // (hosts_per_leaf*host_bandwidth) / (num_spines*spine_bandwidth) equals
    // the requested ratio.
    double spine_bandwidth = 0;
    double oversubscription = 1.0;
  };

  ClosTopology(Topology* topo, Params params);

  // Registers the next host (dense indices, in call order); creates its
  // access links and, when it starts a new leaf, that leaf's spine links.
  int AddHost();

  int num_hosts() const { return num_hosts_; }
  int num_leaves() const { return static_cast<int>(leaves_.size()); }
  int num_spines() const { return params_.num_spines; }
  int LeafOf(int host) const { return host / params_.hosts_per_leaf; }
  double spine_bandwidth() const { return spine_bandwidth_; }
  // Actual ratio implied by the link bandwidths.
  double oversubscription() const;

  LinkIndex host_up(int host) const;    // host -> leaf (egress NIC)
  LinkIndex host_down(int host) const;  // leaf -> host (ingress NIC; incast)

  // host_up(src), [leaf->spine, spine->leaf when leaves differ],
  // host_down(dst). Spine picked by a deterministic ECMP hash.
  std::vector<LinkIndex> Path(int src_host, int dst_host) const;

 private:
  struct Leaf {
    std::vector<LinkIndex> up;    // leaf -> spine, per spine
    std::vector<LinkIndex> down;  // spine -> leaf, per spine
  };

  Topology* topo_;
  Params params_;
  double spine_bandwidth_;
  int num_hosts_ = 0;
  std::vector<LinkIndex> host_up_;
  std::vector<LinkIndex> host_down_;
  std::vector<Leaf> leaves_;
};

}  // namespace pw::net
