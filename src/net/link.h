// A point-to-point link with latency and bandwidth.
//
// Transfers serialize on the link in FIFO order (store-and-forward at the
// sender): a transfer of B bytes occupies the link for B/bandwidth starting
// when the link frees up, and is delivered `latency` after its serialization
// finishes. This is the standard alpha-beta model used for PCIe, per-device
// ICI egress, and DCN NIC egress.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/units.h"
#include "sim/future.h"
#include "sim/simulator.h"

namespace pw::net {

class Link {
 public:
  Link(sim::Simulator* sim, std::string name, Duration latency,
       double bandwidth_bytes_per_sec)
      : sim_(sim),
        name_(std::move(name)),
        latency_(latency),
        bandwidth_(bandwidth_bytes_per_sec) {
    PW_CHECK_GT(bandwidth_, 0.0);
  }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Time the wire is occupied by `bytes`.
  Duration SerializationTime(Bytes bytes) const {
    PW_CHECK_GE(bytes, 0);
    return Duration::Seconds(static_cast<double>(bytes) / EffectiveBandwidth());
  }

  // Fault-injection knob: scales the effective bandwidth (0 < scale <= 1 for
  // degradation, > 1 for headroom experiments). Transfers already in flight
  // keep their original delivery times; only new transfers see the new rate.
  // At exactly 1.0 the arithmetic is bypassed, so unfaulted runs are
  // bit-identical to builds without the knob.
  void set_bandwidth_scale(double scale) {
    PW_CHECK_GT(scale, 0.0);
    bandwidth_scale_ = scale;
  }
  double bandwidth_scale() const { return bandwidth_scale_; }
  double EffectiveBandwidth() const {
    return bandwidth_scale_ == 1.0 ? bandwidth_ : bandwidth_ * bandwidth_scale_;
  }

  // Starts a transfer now; `on_delivered` runs when the last byte arrives at
  // the receiver. Returns the delivery time.
  TimePoint Transfer(Bytes bytes, std::function<void()> on_delivered) {
    const TimePoint start = std::max(sim_->now(), busy_until_);
    const TimePoint tx_done = start + SerializationTime(bytes);
    busy_until_ = tx_done;
    const TimePoint delivered = tx_done + latency_;
    bytes_sent_ += bytes;
    ++transfers_;
    sim_->ScheduleAt(delivered, std::move(on_delivered));
    return delivered;
  }

  sim::SimFuture<sim::Unit> TransferAsync(Bytes bytes) {
    sim::SimPromise<sim::Unit> p(sim_);
    Transfer(bytes, [p]() mutable { p.Set(sim::Unit{}); });
    return p.future();
  }

  Duration latency() const { return latency_; }
  double bandwidth() const { return bandwidth_; }
  Bytes bytes_sent() const { return bytes_sent_; }
  std::int64_t transfers() const { return transfers_; }
  const std::string& name() const { return name_; }
  TimePoint busy_until() const { return busy_until_; }

 private:
  sim::Simulator* sim_;
  std::string name_;
  Duration latency_;
  double bandwidth_;
  double bandwidth_scale_ = 1.0;
  TimePoint busy_until_;
  Bytes bytes_sent_ = 0;
  std::int64_t transfers_ = 0;
};

}  // namespace pw::net
