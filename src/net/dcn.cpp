#include "net/dcn.h"

#include <algorithm>
#include <string>

namespace pw::net {

DcnFabric::DcnFabric(sim::Simulator* sim, DcnParams params)
    : sim_(sim), params_(params) {
  if (params_.clos.enabled) {
    topo_ = std::make_unique<Topology>();
    clos_ = std::make_unique<ClosTopology>(
        topo_.get(), ClosTopology::Params{
                         .hosts_per_leaf = params_.clos.hosts_per_leaf,
                         .num_spines = params_.clos.num_spines,
                         .host_bandwidth = params_.nic_bandwidth,
                         .spine_bandwidth = 0,
                         .oversubscription = params_.clos.oversubscription,
                     });
    flow_ = std::make_unique<FlowNetwork>(sim_, topo_.get());
  }
}

DcnFabric::~DcnFabric() = default;

void DcnFabric::AddHost(HostId host) {
  PW_CHECK(!nics_.contains(host)) << "host " << host << " already registered";
  nics_[host] = std::make_unique<Link>(
      sim_, "nic" + std::to_string(host.value()), params_.latency,
      params_.nic_bandwidth);
  if (flow_) clos_index_[host] = clos_->AddHost();
}

TimePoint DcnFabric::Send(HostId src, HostId dst, Bytes bytes,
                          std::function<void()> on_delivered) {
  PW_CHECK(nics_.contains(src)) << "unknown src host " << src;
  PW_CHECK(nics_.contains(dst)) << "unknown dst host " << dst;
  // Counted at submission, held or not: throughput telemetry sampled during
  // a fault window must see the traffic *offered* in that window, not a
  // heal-time replay burst misattributed to the recovery period.
  ++messages_;
  bytes_ += bytes;
  return Route(src, dst, bytes, std::move(on_delivered), kFreshSend);
}

void DcnFabric::Hold(std::vector<HeldMessage>* queue, HeldMessage m) {
  // Stamp order == submission order. Fresh sends carry the highest stamp
  // yet issued, so lower_bound lands at end() and this is a push_back; only
  // heal-time re-holds (an old stamp meeting younger traffic parked on the
  // peer) pay the mid-queue insert.
  auto pos = std::lower_bound(
      queue->begin(), queue->end(), m.seq,
      [](const HeldMessage& held, std::uint64_t seq) { return held.seq < seq; });
  queue->insert(pos, std::move(m));
}

TimePoint DcnFabric::Route(HostId src, HostId dst, Bytes bytes,
                           std::function<void()> on_delivered,
                           std::uint64_t replay_seq) {
  if (src == dst) {
    // Loopback: no NIC serialization, small fixed cost. Never held by a
    // partition — a partition cuts the fabric, and loopback traffic does
    // not touch the fabric.
    const TimePoint at = sim_->now() + Duration::Micros(1);
    sim_->ScheduleAt(at, std::move(on_delivered));
    return at;
  }
  if (!partitioned_.empty()) {
    auto hold = partitioned_.find(src);
    if (hold == partitioned_.end()) hold = partitioned_.find(dst);
    if (hold != partitioned_.end()) {
      const std::uint64_t seq =
          replay_seq == kFreshSend ? next_hold_seq_++ : replay_seq;
      Hold(&hold->second,
           HeldMessage{src, dst, bytes, std::move(on_delivered), seq});
      return kHeldSentinel;  // delivery time unknowable until the heal
    }
  }
  const Bytes wire_bytes = bytes + params_.per_message_header;
  if (flow_) {
    // Flow-level Clos: the message contends on its real host→leaf→spine→
    // leaf→host path. The returned estimate assumes an uncontended NIC
    // (the fastest the flow could possibly finish); on_delivered carries
    // the actual, contention-aware delivery.
    flow_->StartFlow(clos_->Path(clos_index_.at(src), clos_index_.at(dst)),
                     wire_bytes, params_.latency, std::move(on_delivered));
    return sim_->now() + params_.latency +
           Duration::Seconds(static_cast<double>(wire_bytes) /
                             params_.nic_bandwidth);
  }
  return nics_[src]->Transfer(wire_bytes, std::move(on_delivered));
}

sim::SimFuture<sim::Unit> DcnFabric::SendAsync(HostId src, HostId dst, Bytes bytes) {
  sim::SimPromise<sim::Unit> p(sim_);
  Send(src, dst, bytes, [p]() mutable { p.Set(sim::Unit{}); });
  return p.future();
}

void DcnFabric::SetNicBandwidthScale(HostId host, double scale) {
  PW_CHECK(nics_.contains(host)) << "unknown host " << host;
  nics_[host]->set_bandwidth_scale(scale);
  if (flow_) {
    // Degrade the host's access edges in the link graph: exactly the flows
    // crossing this NIC slow down, in both directions.
    const int h = clos_index_.at(host);
    topo_->SetLinkScale(clos_->host_up(h), scale);
    topo_->SetLinkScale(clos_->host_down(h), scale);
    flow_->OnCapacityChanged();
  }
}

double DcnFabric::nic_bandwidth_scale(HostId host) const {
  auto it = nics_.find(host);
  PW_CHECK(it != nics_.end()) << "unknown host " << host;
  return it->second->bandwidth_scale();
}

void DcnFabric::SetPartitioned(HostId host, bool partitioned) {
  PW_CHECK(nics_.contains(host)) << "unknown host " << host;
  if (partitioned) {
    partitioned_.try_emplace(host);  // keeps an existing hold queue
    return;
  }
  auto it = partitioned_.find(host);
  if (it == partitioned_.end()) return;
  // Heal: replay held messages in submission-stamp order, without
  // re-counting them (each was counted when first offered). Route()
  // re-checks the other endpoint, so a message whose peer is still
  // partitioned moves to that peer's hold queue — keeping its stamp, so it
  // sorts ahead of traffic submitted after it (the dual-partition FIFO
  // regression in net_test.cpp).
  std::vector<HeldMessage> held = std::move(it->second);
  partitioned_.erase(it);
  for (HeldMessage& m : held) {
    Route(m.src, m.dst, m.bytes, std::move(m.on_delivered), m.seq);
  }
}

std::size_t DcnFabric::messages_held() const {
  std::size_t n = 0;
  for (const auto& [host, queue] : partitioned_) n += queue.size();
  return n;
}

Bytes DcnFabric::held_bytes() const {
  Bytes n = 0;
  for (const auto& [host, queue] : partitioned_) {
    for (const HeldMessage& m : queue) n += m.bytes;
  }
  return n;
}

void DcnBatcher::Send(HostId dst, Bytes bytes, std::function<void()> on_delivered) {
  Pending& pend = pending_[dst];
  pend.bytes += bytes;
  pend.callbacks.push_back(std::move(on_delivered));
  if (!pend.flush_scheduled) {
    pend.flush_scheduled = true;
    sim_->Schedule(window_, [this, dst] { Flush(dst); });
  }
}

void DcnBatcher::Flush(HostId dst) {
  auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  Pending batch = std::move(it->second);
  pending_.erase(it);
  if (batch.callbacks.empty()) return;
  ++flushes_;
  auto callbacks = std::make_shared<std::vector<std::function<void()>>>(
      std::move(batch.callbacks));
  fabric_->Send(self_, dst, batch.bytes, [callbacks] {
    for (auto& cb : *callbacks) cb();
  });
}

}  // namespace pw::net
