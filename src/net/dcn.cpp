#include "net/dcn.h"

#include <string>

namespace pw::net {

void DcnFabric::AddHost(HostId host) {
  PW_CHECK(!nics_.contains(host)) << "host " << host << " already registered";
  nics_[host] = std::make_unique<Link>(
      sim_, "nic" + std::to_string(host.value()), params_.latency,
      params_.nic_bandwidth);
}

TimePoint DcnFabric::Send(HostId src, HostId dst, Bytes bytes,
                          std::function<void()> on_delivered) {
  PW_CHECK(nics_.contains(src)) << "unknown src host " << src;
  PW_CHECK(nics_.contains(dst)) << "unknown dst host " << dst;
  ++messages_;
  bytes_ += bytes;
  if (src == dst) {
    // Loopback: no NIC serialization, small fixed cost.
    const TimePoint at = sim_->now() + Duration::Micros(1);
    sim_->ScheduleAt(at, std::move(on_delivered));
    return at;
  }
  return nics_[src]->Transfer(bytes + params_.per_message_header,
                              std::move(on_delivered));
}

sim::SimFuture<sim::Unit> DcnFabric::SendAsync(HostId src, HostId dst, Bytes bytes) {
  sim::SimPromise<sim::Unit> p(sim_);
  Send(src, dst, bytes, [p]() mutable { p.Set(sim::Unit{}); });
  return p.future();
}

void DcnBatcher::Send(HostId dst, Bytes bytes, std::function<void()> on_delivered) {
  Pending& pend = pending_[dst];
  pend.bytes += bytes;
  pend.callbacks.push_back(std::move(on_delivered));
  if (!pend.flush_scheduled) {
    pend.flush_scheduled = true;
    sim_->Schedule(window_, [this, dst] { Flush(dst); });
  }
}

void DcnBatcher::Flush(HostId dst) {
  auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  Pending batch = std::move(it->second);
  pending_.erase(it);
  if (batch.callbacks.empty()) return;
  ++flushes_;
  auto callbacks = std::make_shared<std::vector<std::function<void()>>>(
      std::move(batch.callbacks));
  fabric_->Send(self_, dst, batch.bytes, [callbacks] {
    for (auto& cb : *callbacks) cb();
  });
}

}  // namespace pw::net
