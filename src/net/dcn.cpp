#include "net/dcn.h"

#include <string>

namespace pw::net {

void DcnFabric::AddHost(HostId host) {
  PW_CHECK(!nics_.contains(host)) << "host " << host << " already registered";
  nics_[host] = std::make_unique<Link>(
      sim_, "nic" + std::to_string(host.value()), params_.latency,
      params_.nic_bandwidth);
}

TimePoint DcnFabric::Send(HostId src, HostId dst, Bytes bytes,
                          std::function<void()> on_delivered) {
  PW_CHECK(nics_.contains(src)) << "unknown src host " << src;
  PW_CHECK(nics_.contains(dst)) << "unknown dst host " << dst;
  // Counted at submission, held or not: throughput telemetry sampled during
  // a fault window must see the traffic *offered* in that window, not a
  // heal-time replay burst misattributed to the recovery period.
  ++messages_;
  bytes_ += bytes;
  return Route(src, dst, bytes, std::move(on_delivered));
}

TimePoint DcnFabric::Route(HostId src, HostId dst, Bytes bytes,
                           std::function<void()> on_delivered) {
  if (src == dst) {
    // Loopback: no NIC serialization, small fixed cost. Never held by a
    // partition — a partition cuts the fabric, and loopback traffic does
    // not touch the fabric.
    const TimePoint at = sim_->now() + Duration::Micros(1);
    sim_->ScheduleAt(at, std::move(on_delivered));
    return at;
  }
  if (!partitioned_.empty()) {
    auto hold = partitioned_.find(src);
    if (hold == partitioned_.end()) hold = partitioned_.find(dst);
    if (hold != partitioned_.end()) {
      hold->second.push_back(
          HeldMessage{src, dst, bytes, std::move(on_delivered)});
      return sim_->now();  // lower bound; actual delivery awaits the heal
    }
  }
  return nics_[src]->Transfer(bytes + params_.per_message_header,
                              std::move(on_delivered));
}

sim::SimFuture<sim::Unit> DcnFabric::SendAsync(HostId src, HostId dst, Bytes bytes) {
  sim::SimPromise<sim::Unit> p(sim_);
  Send(src, dst, bytes, [p]() mutable { p.Set(sim::Unit{}); });
  return p.future();
}

void DcnFabric::SetNicBandwidthScale(HostId host, double scale) {
  PW_CHECK(nics_.contains(host)) << "unknown host " << host;
  nics_[host]->set_bandwidth_scale(scale);
}

double DcnFabric::nic_bandwidth_scale(HostId host) const {
  auto it = nics_.find(host);
  PW_CHECK(it != nics_.end()) << "unknown host " << host;
  return it->second->bandwidth_scale();
}

void DcnFabric::SetPartitioned(HostId host, bool partitioned) {
  PW_CHECK(nics_.contains(host)) << "unknown host " << host;
  if (partitioned) {
    partitioned_.try_emplace(host);  // keeps an existing hold queue
    return;
  }
  auto it = partitioned_.find(host);
  if (it == partitioned_.end()) return;
  // Heal: replay held messages in original order, without re-counting them
  // (each was counted when first offered). Route() re-checks the other
  // endpoint, so a message whose peer is still partitioned simply moves to
  // that peer's hold queue.
  std::vector<HeldMessage> held = std::move(it->second);
  partitioned_.erase(it);
  for (HeldMessage& m : held) {
    Route(m.src, m.dst, m.bytes, std::move(m.on_delivered));
  }
}

std::size_t DcnFabric::messages_held() const {
  std::size_t n = 0;
  for (const auto& [host, queue] : partitioned_) n += queue.size();
  return n;
}

Bytes DcnFabric::held_bytes() const {
  Bytes n = 0;
  for (const auto& [host, queue] : partitioned_) {
    for (const HeldMessage& m : queue) n += m.bytes;
  }
  return n;
}

void DcnBatcher::Send(HostId dst, Bytes bytes, std::function<void()> on_delivered) {
  Pending& pend = pending_[dst];
  pend.bytes += bytes;
  pend.callbacks.push_back(std::move(on_delivered));
  if (!pend.flush_scheduled) {
    pend.flush_scheduled = true;
    sim_->Schedule(window_, [this, dst] { Flush(dst); });
  }
}

void DcnBatcher::Flush(HostId dst) {
  auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  Pending batch = std::move(it->second);
  pending_.erase(it);
  if (batch.callbacks.empty()) return;
  ++flushes_;
  auto callbacks = std::make_shared<std::vector<std::function<void()>>>(
      std::move(batch.callbacks));
  fabric_->Send(self_, dst, batch.bytes, [callbacks] {
    for (auto& cb : *callbacks) cb();
  });
}

}  // namespace pw::net
