// Flow-level network engine over an explicit Topology (docs/NETWORK.md).
//
// Active transfers are modeled as fluid flows that share every link on
// their path max-min fairly. The allocation is recomputed at each flow
// start, flow finish, and link-capacity change — the standard fluid
// approximation used by flow-level simulators — so a transfer's rate rises
// and falls as competitors come and go, and effects the scalar fabric
// cannot express (incast at a destination NIC, Clos oversubscription,
// one degraded edge slowing exactly the paths that cross it) fall out of
// the link graph.
//
// Determinism: every recomputation runs inside a simulator event, ordered
// by (time, seq) like everything else; flows are iterated in start order
// (flow ids are handed out sequentially); the water-filling bottleneck
// tie-break is the lowest link index; and predicted completion times are
// ceilinged to integer nanoseconds. Two runs of the same scenario schedule
// byte-identical event sequences.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "net/collective_model.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace pw::net {

// Max-min fair (water-filling) rates, in bytes/sec, for `paths` over the
// effective link bandwidths of `topo`. Repeatedly finds the bottleneck link
// — the one whose remaining capacity divided by its unfixed-flow count is
// smallest, ties to the lowest link index — and fixes every flow crossing
// it at that fair share. Runs in O(iterations · total path length); exact
// order of operations is deterministic, so results are bit-stable.
std::vector<double> MaxMinFairRates(
    const Topology& topo, const std::vector<const std::vector<LinkIndex>*>& paths);

class FlowNetwork {
 public:
  using FlowId = std::int64_t;

  FlowNetwork(sim::Simulator* sim, Topology* topo) : sim_(sim), topo_(topo) {
    PW_CHECK(sim_ != nullptr);
    PW_CHECK(topo_ != nullptr);
  }
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  // Starts a flow of `bytes` over `path` (non-empty). When the last byte
  // drains, `on_delivered` is scheduled `delivery_latency` later
  // (serialization finish + propagation, the flow-level analogue of
  // Link::Transfer's store-and-forward accounting).
  FlowId StartFlow(std::vector<LinkIndex> path, Bytes bytes,
                   Duration delivery_latency, std::function<void()> on_delivered);

  // Call after Topology::SetLinkScale so active flows re-share the new
  // capacities from now() onward (bytes already moved stay moved).
  void OnCapacityChanged();

  int active_flows() const { return static_cast<int>(flows_.size()); }
  std::int64_t flows_started() const { return flows_started_; }
  std::int64_t flows_completed() const { return flows_completed_; }
  Bytes bytes_delivered() const { return bytes_delivered_; }

  // Current fair-share rate of an active flow (bytes/sec); 0 if finished.
  double Rate(FlowId id) const;

 private:
  struct Flow {
    std::vector<LinkIndex> path;
    double remaining = 0;  // bytes left to drain
    double rate = 0;       // current fair share, bytes/sec
    Duration latency;
    std::function<void()> on_delivered;
  };

  // Advances progress to now(), delivers ripe flows, re-solves the fair
  // shares for the survivors, and re-arms the next-completion timer.
  void Recompute();

  sim::Simulator* sim_;
  Topology* topo_;
  std::map<FlowId, Flow> flows_;  // id order == start order
  FlowId next_id_ = 0;
  TimePoint last_update_;
  sim::EventHandle next_completion_;
  std::int64_t flows_started_ = 0;
  std::int64_t flows_completed_ = 0;
  Bytes bytes_delivered_ = 0;
};

// CollectiveModel backed by the flow solver over a torus: phases are
// decomposed into per-link flows and charged their max-min rates, instead
// of the single-bottleneck analytic formula.
//
//   ring: over the snake ring of the first n nodes; all-reduce is 2(n-1)
//         steps of B/n-byte chunk exchanges (reduce-scatter + all-gather),
//         each step paying its worst path latency plus chunk/min-rate.
//   tree: ceil(log2 n) rounds of pairwise halving/doubling over the same
//         node set, full-B payloads, per-round max-min rates.
//
// All-reduce takes min(ring, tree) — the size-based algorithm choice: the
// tree wins for small payloads (fewer latency hops), the ring for large
// (bandwidth-optimal). Per-(n) schedules are cached and invalidated by the
// topology generation, so a degraded ICI link reprices collectives.
class FlowCollectiveModel : public CollectiveModel {
 public:
  FlowCollectiveModel(CollectiveParams params, const Topology* topo,
                      const TorusTopology* torus)
      : CollectiveModel(params), topo_(topo), torus_(torus) {
    PW_CHECK(topo_ != nullptr);
    PW_CHECK(torus_ != nullptr);
  }

  Duration Time(CollectiveKind kind, Bytes bytes, int n) const override;

  // Exposed for tests and the ring-vs-tree crossover analysis.
  Duration RingTime(CollectiveKind kind, Bytes bytes, int n) const;
  Duration TreeTime(CollectiveKind kind, Bytes bytes, int n) const;

 private:
  struct StepCost {
    double min_rate = 0;  // slowest flow's max-min rate in the step/round
    int max_hops = 1;     // longest path in the step/round
  };

  const StepCost& RingStep(int n) const;
  const std::vector<StepCost>& TreeRounds(int n) const;
  void MaybeInvalidate() const;

  const Topology* topo_;
  const TorusTopology* torus_;
  mutable std::uint64_t cache_generation_ = ~std::uint64_t{0};
  mutable std::map<int, StepCost> ring_cache_;
  mutable std::map<int, std::vector<StepCost>> tree_cache_;
};

}  // namespace pw::net
