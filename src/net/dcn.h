// Datacenter-network fabric connecting hosts (and islands).
//
// Two fidelity levels share one API (docs/NETWORK.md):
//   * Abstract (default): each host owns a NIC whose egress is a
//     serializing Link; messages between hosts pay NIC serialization +
//     fabric latency (an order of magnitude above PCIe, per the paper §2).
//     No topology, no contention beyond the sender's own NIC.
//   * Flow-level Clos (DcnParams::clos.enabled): hosts hang off a two-tier
//     leaf/spine Clos (net/topology.h) and every message becomes a fluid
//     flow (net/flow.h) over its real host→leaf→spine→leaf→host path.
//     Uplink oversubscription and incast at the destination's access link
//     are first-class; a NIC-degrade fault scales that host's access
//     edges, and a partition cuts real paths.
// The fabric also offers a Batcher that coalesces small control messages
// destined for the same host within a short window — the PLAQUE
// requirement of "batch messages destined for the same host when high
// throughput is required" (§4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strong_id.h"
#include "common/units.h"
#include "net/flow.h"
#include "net/link.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace pw::net {

struct HostTag {};
using HostId = StrongId<HostTag>;

// Opt-in flow-level DCN. Defaults off: the abstract per-NIC fabric stays in
// effect and runs are bit-identical to builds without the flow engine.
struct DcnClosParams {
  bool enabled = false;
  int hosts_per_leaf = 8;
  int num_spines = 4;
  // Target uplink oversubscription R = (hosts_per_leaf * nic_bandwidth) /
  // (num_spines * spine_bandwidth); the per-uplink bandwidth is derived.
  // R = 1 is non-blocking; R > 1 makes cross-leaf traffic contend.
  double oversubscription = 1.0;
};

struct DcnParams {
  Duration latency = Duration::Micros(20);       // one-way fabric latency
  double nic_bandwidth = 12.5e9;                 // bytes/sec per host NIC
  Bytes per_message_header = 128;                // framing overhead per message
  DcnClosParams clos;                            // flow-level mode knobs
};

class DcnFabric {
 public:
  // Returned by Send() when the message was held by a partition: delivery
  // time is unknowable until the heal, so no usable estimate exists.
  // Callers must branch on it before scheduling anything (ScheduleAt on it
  // dies on the far-future check). Audit note: every in-tree caller drives
  // off on_delivered and ignores the return, which is why the sentinel is
  // safe to introduce.
  static constexpr TimePoint kHeldSentinel = TimePoint::Max();

  DcnFabric(sim::Simulator* sim, DcnParams params);
  ~DcnFabric();

  DcnFabric(const DcnFabric&) = delete;
  DcnFabric& operator=(const DcnFabric&) = delete;

  // Registers a host endpoint; must be called before sending to/from it.
  void AddHost(HostId host);
  bool HasHost(HostId host) const { return nics_.contains(host); }

  // Sends `bytes` from src to dst; on_delivered runs at arrival. Local
  // (src == dst) messages are delivered after a loopback cost only. If
  // either endpoint is partitioned the message is held (FIFO, per
  // partitioned host) and re-submitted when that host heals; the call then
  // returns kHeldSentinel — there is no meaningful delivery estimate, and
  // callers must not schedule on it. Held messages still count toward
  // messages_sent()/bytes_sent() at submission time — traffic telemetry
  // attributes load to when it was offered, not to the heal-time replay
  // burst (held_bytes() exposes the in-limbo amount separately).
  TimePoint Send(HostId src, HostId dst, Bytes bytes,
                 std::function<void()> on_delivered);

  sim::SimFuture<sim::Unit> SendAsync(HostId src, HostId dst, Bytes bytes);

  // --- Fault-injection knobs (see docs/FAULTS.md) ---
  // Scales one host's NIC egress bandwidth (congestion injection). 1.0
  // restores nominal; the scale applies to transfers started after the call.
  void SetNicBandwidthScale(HostId host, double scale);
  double nic_bandwidth_scale(HostId host) const;
  // Partitions a host off the fabric: messages from or to it are held and
  // replayed (in original send order) when the partition heals. Messages
  // already serialized onto the wire still deliver — a partition cuts the
  // fabric, it does not un-send packets.
  void SetPartitioned(HostId host, bool partitioned);
  bool partitioned(HostId host) const { return partitioned_.contains(host); }
  std::size_t messages_held() const;
  // Payload bytes currently parked in partition hold queues (already
  // counted in bytes_sent(); they leave this number when the heal replays
  // them onto the wire).
  Bytes held_bytes() const;

  const DcnParams& params() const { return params_; }

  // Minimum latency any cross-island interaction can experience: the
  // one-way fabric latency floor under every message (serialization and
  // contention only add to it, and partitions only delay further). This is
  // the lookahead bound the partitioned engine (sim/partition.h) is built
  // on — islands interact exclusively through the DCN, so no LP can affect
  // a peer sooner than this.
  Duration MinCrossIslandLatency() const { return params_.latency; }

  std::int64_t messages_sent() const { return messages_; }
  Bytes bytes_sent() const { return bytes_; }

  // Flow-level mode introspection (null/empty when clos.enabled is false).
  bool flow_mode() const { return flow_ != nullptr; }
  const ClosTopology* clos() const { return clos_.get(); }
  const FlowNetwork* flow_network() const { return flow_.get(); }

 private:
  struct HeldMessage {
    HostId src;
    HostId dst;
    Bytes bytes;
    std::function<void()> on_delivered;
    // Fabric-wide submission stamp, assigned when the message is first
    // held. The heal replays each queue in stamp order, and a message
    // re-held on its peer's queue keeps its stamp and is inserted in stamp
    // position — not appended behind later traffic — so the documented
    // "original send order" FIFO holds across dual partitions.
    std::uint64_t seq = 0;
  };
  // Route()'s replay_seq value for fresh submissions (not a replay).
  static constexpr std::uint64_t kFreshSend = ~std::uint64_t{0};

  // Send() minus the counting: used for heal-time replay, whose messages
  // were already counted when first submitted. `replay_seq` carries a held
  // message's original stamp through re-holds; kFreshSend for new traffic.
  TimePoint Route(HostId src, HostId dst, Bytes bytes,
                  std::function<void()> on_delivered, std::uint64_t replay_seq);

  // Puts the message on `queue` in stamp order (O(1) for fresh sends, which
  // always carry the highest stamp so far).
  void Hold(std::vector<HeldMessage>* queue, HeldMessage m);

  sim::Simulator* sim_;
  DcnParams params_;
  std::map<HostId, std::unique_ptr<Link>> nics_;
  // Flow-level mode (params_.clos.enabled): the Clos link graph and the
  // fair-share engine every message routes through. Null in abstract mode.
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<ClosTopology> clos_;
  std::unique_ptr<FlowNetwork> flow_;
  std::map<HostId, int> clos_index_;
  // Hosts currently cut off, each with the FIFO of messages waiting on its
  // heal. A message blocked on both endpoints waits on the src's queue and
  // re-checks the dst when replayed.
  std::map<HostId, std::vector<HeldMessage>> partitioned_;
  std::uint64_t next_hold_seq_ = 0;
  std::int64_t messages_ = 0;
  Bytes bytes_ = 0;
};

// Coalesces messages to the same destination host: messages enqueued within
// `window` of the first unflushed message are sent as one DCN message (sum
// of payloads + one header), and their delivery callbacks all run on
// arrival. Used by the PLAQUE runtime for high-fanout edges.
class DcnBatcher {
 public:
  DcnBatcher(sim::Simulator* sim, DcnFabric* fabric, HostId self,
             Duration window)
      : sim_(sim), fabric_(fabric), self_(self), window_(window) {}

  void Send(HostId dst, Bytes bytes, std::function<void()> on_delivered);

  // Number of physical DCN messages actually emitted.
  std::int64_t flushes() const { return flushes_; }

 private:
  struct Pending {
    Bytes bytes = 0;
    std::vector<std::function<void()>> callbacks;
    bool flush_scheduled = false;
  };

  void Flush(HostId dst);

  sim::Simulator* sim_;
  DcnFabric* fabric_;
  HostId self_;
  Duration window_;
  std::map<HostId, Pending> pending_;
  std::int64_t flushes_ = 0;
};

}  // namespace pw::net
