// Datacenter-network fabric connecting hosts (and islands).
//
// Each host owns a NIC whose egress is a serializing Link; messages between
// hosts pay NIC serialization + fabric latency (an order of magnitude above
// PCIe, per the paper §2). The fabric also offers a Batcher that coalesces
// small control messages destined for the same host within a short window —
// the PLAQUE requirement of "batch messages destined for the same host when
// high throughput is required" (§4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strong_id.h"
#include "common/units.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace pw::net {

struct HostTag {};
using HostId = StrongId<HostTag>;

struct DcnParams {
  Duration latency = Duration::Micros(20);       // one-way fabric latency
  double nic_bandwidth = 12.5e9;                 // bytes/sec per host NIC
  Bytes per_message_header = 128;                // framing overhead per message
};

class DcnFabric {
 public:
  DcnFabric(sim::Simulator* sim, DcnParams params)
      : sim_(sim), params_(params) {}

  DcnFabric(const DcnFabric&) = delete;
  DcnFabric& operator=(const DcnFabric&) = delete;

  // Registers a host endpoint; must be called before sending to/from it.
  void AddHost(HostId host);
  bool HasHost(HostId host) const { return nics_.contains(host); }

  // Sends `bytes` from src to dst; on_delivered runs at arrival. Local
  // (src == dst) messages are delivered after a loopback cost only. If
  // either endpoint is partitioned the message is held (FIFO, per
  // partitioned host) and re-submitted when that host heals; the returned
  // TimePoint is then only a lower bound on delivery. Held messages still
  // count toward messages_sent()/bytes_sent() at submission time — traffic
  // telemetry attributes load to when it was offered, not to the heal-time
  // replay burst (held_bytes() exposes the in-limbo amount separately).
  TimePoint Send(HostId src, HostId dst, Bytes bytes,
                 std::function<void()> on_delivered);

  sim::SimFuture<sim::Unit> SendAsync(HostId src, HostId dst, Bytes bytes);

  // --- Fault-injection knobs (see docs/FAULTS.md) ---
  // Scales one host's NIC egress bandwidth (congestion injection). 1.0
  // restores nominal; the scale applies to transfers started after the call.
  void SetNicBandwidthScale(HostId host, double scale);
  double nic_bandwidth_scale(HostId host) const;
  // Partitions a host off the fabric: messages from or to it are held and
  // replayed (in original send order) when the partition heals. Messages
  // already serialized onto the wire still deliver — a partition cuts the
  // fabric, it does not un-send packets.
  void SetPartitioned(HostId host, bool partitioned);
  bool partitioned(HostId host) const { return partitioned_.contains(host); }
  std::size_t messages_held() const;
  // Payload bytes currently parked in partition hold queues (already
  // counted in bytes_sent(); they leave this number when the heal replays
  // them onto the wire).
  Bytes held_bytes() const;

  const DcnParams& params() const { return params_; }
  std::int64_t messages_sent() const { return messages_; }
  Bytes bytes_sent() const { return bytes_; }

 private:
  struct HeldMessage {
    HostId src;
    HostId dst;
    Bytes bytes;
    std::function<void()> on_delivered;
  };

  // Send() minus the counting: used for heal-time replay, whose messages
  // were already counted when first submitted.
  TimePoint Route(HostId src, HostId dst, Bytes bytes,
                  std::function<void()> on_delivered);

  sim::Simulator* sim_;
  DcnParams params_;
  std::map<HostId, std::unique_ptr<Link>> nics_;
  // Hosts currently cut off, each with the FIFO of messages waiting on its
  // heal. A message blocked on both endpoints waits on the src's queue and
  // re-checks the dst when replayed.
  std::map<HostId, std::vector<HeldMessage>> partitioned_;
  std::int64_t messages_ = 0;
  Bytes bytes_ = 0;
};

// Coalesces messages to the same destination host: messages enqueued within
// `window` of the first unflushed message are sent as one DCN message (sum
// of payloads + one header), and their delivery callbacks all run on
// arrival. Used by the PLAQUE runtime for high-fanout edges.
class DcnBatcher {
 public:
  DcnBatcher(sim::Simulator* sim, DcnFabric* fabric, HostId self,
             Duration window)
      : sim_(sim), fabric_(fabric), self_(self), window_(window) {}

  void Send(HostId dst, Bytes bytes, std::function<void()> on_delivered);

  // Number of physical DCN messages actually emitted.
  std::int64_t flushes() const { return flushes_; }

 private:
  struct Pending {
    Bytes bytes = 0;
    std::vector<std::function<void()>> callbacks;
    bool flush_scheduled = false;
  };

  void Flush(HostId dst);

  sim::Simulator* sim_;
  DcnFabric* fabric_;
  HostId self_;
  Duration window_;
  std::map<HostId, Pending> pending_;
  std::int64_t flushes_ = 0;
};

}  // namespace pw::net
