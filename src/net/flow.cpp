#include "net/flow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace pw::net {

namespace {

// A flow counts as drained once less than this many bytes remain: absorbs
// float rounding from rate*dt progress accounting without ever letting a
// real byte linger.
constexpr double kRipeBytes = 1e-3;

}  // namespace

std::vector<double> MaxMinFairRates(
    const Topology& topo,
    const std::vector<const std::vector<LinkIndex>*>& paths) {
  const std::size_t n = paths.size();
  std::vector<double> rates(n, 0.0);
  if (n == 0) return rates;

  // Per-link remaining capacity and unfixed-flow crossing count, over just
  // the links these paths touch. A path may cross a link more than once
  // (not the case for torus/Clos routes, but the solver stays general).
  std::map<LinkIndex, double> remaining;
  std::map<LinkIndex, int> count;
  for (const auto* path : paths) {
    PW_CHECK(!path->empty()) << "flow with empty path";
    for (LinkIndex l : *path) {
      remaining.try_emplace(l, topo.EffectiveBandwidth(l));
      ++count[l];
    }
  }

  std::vector<bool> fixed(n, false);
  std::size_t unfixed = n;
  while (unfixed > 0) {
    // Bottleneck: smallest fair share; ties to the lowest link index (the
    // map iterates in index order, so `<` keeps the first).
    LinkIndex bottleneck = -1;
    double share = std::numeric_limits<double>::infinity();
    for (const auto& [l, cap] : remaining) {
      const int c = count[l];
      if (c == 0) continue;
      const double s = std::max(cap, 0.0) / c;
      if (s < share) {
        share = s;
        bottleneck = l;
      }
    }
    PW_CHECK_GE(bottleneck, 0) << "unfixed flows but no loaded link";
    for (std::size_t f = 0; f < n; ++f) {
      if (fixed[f]) continue;
      const auto& path = *paths[f];
      if (std::find(path.begin(), path.end(), bottleneck) == path.end()) {
        continue;
      }
      rates[f] = share;
      fixed[f] = true;
      --unfixed;
      for (LinkIndex l : path) {
        remaining[l] -= share;
        --count[l];
      }
    }
  }
  return rates;
}

// ---------------------------------------------------------------------------
// FlowNetwork

FlowNetwork::FlowId FlowNetwork::StartFlow(std::vector<LinkIndex> path,
                                           Bytes bytes, Duration delivery_latency,
                                           std::function<void()> on_delivered) {
  PW_CHECK(!path.empty()) << "flow needs a non-empty path";
  PW_CHECK_GE(bytes, 0);
  const FlowId id = next_id_++;
  Flow& flow = flows_[id];
  flow.path = std::move(path);
  // A zero-byte message still occupies the wire for one quantum rather than
  // completing instantaneously at infinite rate.
  flow.remaining = std::max<double>(static_cast<double>(bytes), 1.0);
  flow.latency = delivery_latency;
  flow.on_delivered = std::move(on_delivered);
  ++flows_started_;
  Recompute();
  return id;
}

void FlowNetwork::OnCapacityChanged() {
  if (!flows_.empty()) Recompute();
}

double FlowNetwork::Rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::Recompute() {
  const TimePoint now = sim_->now();

  // 1. Advance progress at the rates that held since the last event.
  const double dt = (now - last_update_).ToSeconds();
  if (dt > 0) {
    for (auto& [id, flow] : flows_) {
      flow.remaining = std::max(flow.remaining - flow.rate * dt, 0.0);
    }
  }
  last_update_ = now;

  // 2. Deliver drained flows (in flow-id == start order; ties in delivery
  // time then resolve by schedule order, i.e. FIFO).
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& flow = it->second;
    if (flow.remaining < kRipeBytes) {
      ++flows_completed_;
      sim_->ScheduleAt(now + flow.latency, std::move(flow.on_delivered));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }

  if (flows_.empty()) {
    if (next_completion_.valid()) sim_->Cancel(next_completion_);
    next_completion_ = sim::EventHandle();
    return;
  }

  // 3. Re-solve the fair shares for the survivors.
  std::vector<const std::vector<LinkIndex>*> paths;
  paths.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) paths.push_back(&flow.path);
  const std::vector<double> rates = MaxMinFairRates(*topo_, paths);
  std::size_t i = 0;
  std::int64_t next_ns = std::numeric_limits<std::int64_t>::max();
  for (auto& [id, flow] : flows_) {
    flow.rate = rates[i++];
    PW_CHECK_GT(flow.rate, 0.0) << "flow starved by the fair-share solver";
    // Ceil to integer nanoseconds: the flow is never delivered early, and
    // the residual (< 1ns of progress) is absorbed by kRipeBytes.
    const double dt_ns = flow.remaining / flow.rate * 1e9;
    const std::int64_t at =
        now.nanos() + std::max<std::int64_t>(
                          static_cast<std::int64_t>(std::ceil(dt_ns)), 1);
    next_ns = std::min(next_ns, at);
  }

  // 4. One timer at the earliest predicted completion; re-armed wholesale
  // on every recompute (cheaper than tracking which prediction moved).
  if (next_completion_.valid()) sim_->Cancel(next_completion_);
  next_completion_ =
      sim_->ScheduleAt(TimePoint::FromNanos(next_ns), [this] { Recompute(); });
}

// ---------------------------------------------------------------------------
// FlowCollectiveModel

void FlowCollectiveModel::MaybeInvalidate() const {
  if (cache_generation_ != topo_->generation()) {
    ring_cache_.clear();
    tree_cache_.clear();
    cache_generation_ = topo_->generation();
  }
}

const FlowCollectiveModel::StepCost& FlowCollectiveModel::RingStep(int n) const {
  MaybeInvalidate();
  auto it = ring_cache_.find(n);
  if (it != ring_cache_.end()) return it->second;

  // One ring step: node order[i] sends its chunk to order[(i+1) % n], all n
  // transfers concurrently. On the snake embedding all but the closing edge
  // are single hops on disjoint links; the closing edge (and any gang
  // smaller than the full torus) routes dimension-ordered and may share
  // links, which the max-min solve prices in.
  const std::vector<int>& order = torus_->ring_order();
  std::vector<std::vector<LinkIndex>> paths(static_cast<std::size_t>(n));
  std::vector<const std::vector<LinkIndex>*> path_ptrs;
  StepCost cost;
  for (int i = 0; i < n; ++i) {
    const int src = order[static_cast<std::size_t>(i)];
    const int dst = order[static_cast<std::size_t>((i + 1) % n)];
    paths[static_cast<std::size_t>(i)] = torus_->Path(src, dst);
    cost.max_hops = std::max(
        cost.max_hops, static_cast<int>(paths[static_cast<std::size_t>(i)].size()));
    path_ptrs.push_back(&paths[static_cast<std::size_t>(i)]);
  }
  const std::vector<double> rates = MaxMinFairRates(*topo_, path_ptrs);
  cost.min_rate = *std::min_element(rates.begin(), rates.end());
  return ring_cache_.emplace(n, cost).first->second;
}

const std::vector<FlowCollectiveModel::StepCost>& FlowCollectiveModel::TreeRounds(
    int n) const {
  MaybeInvalidate();
  auto it = tree_cache_.find(n);
  if (it != tree_cache_.end()) return it->second;

  // Binomial-tree reduce over the same snake-ordered node set: in round r,
  // every node at odd multiple of 2^r sends its full payload to the partner
  // 2^r below it. (The mirror broadcast uses the reverse paths; we charge
  // the same per-round costs.)
  const std::vector<int>& order = torus_->ring_order();
  std::vector<StepCost> rounds;
  for (int stride = 1; stride < n; stride *= 2) {
    std::vector<std::vector<LinkIndex>> paths;
    for (int i = stride; i < n; i += 2 * stride) {
      paths.push_back(torus_->Path(order[static_cast<std::size_t>(i)],
                                   order[static_cast<std::size_t>(i - stride)]));
    }
    StepCost cost;
    std::vector<const std::vector<LinkIndex>*> path_ptrs;
    for (const auto& p : paths) {
      cost.max_hops = std::max(cost.max_hops, static_cast<int>(p.size()));
      path_ptrs.push_back(&p);
    }
    const std::vector<double> rates = MaxMinFairRates(*topo_, path_ptrs);
    cost.min_rate = *std::min_element(rates.begin(), rates.end());
    rounds.push_back(cost);
  }
  return tree_cache_.emplace(n, std::move(rounds)).first->second;
}

Duration FlowCollectiveModel::RingTime(CollectiveKind kind, Bytes bytes,
                                       int n) const {
  const StepCost& step = RingStep(n);
  const double chunk = static_cast<double>(bytes) / n;
  int steps = 0;
  switch (kind) {
    case CollectiveKind::kAllReduce:
      steps = 2 * (n - 1);  // reduce-scatter + all-gather
      break;
    case CollectiveKind::kAllGather:
    case CollectiveKind::kReduceScatter:
      steps = n - 1;
      break;
    case CollectiveKind::kBroadcast:
      steps = n - 1;  // pipelined ring broadcast, chunked like all-gather
      break;
  }
  const double seconds =
      steps * (params().hop_latency.ToSeconds() * step.max_hops +
               chunk / step.min_rate);
  return Duration::Seconds(seconds);
}

Duration FlowCollectiveModel::TreeTime(CollectiveKind kind, Bytes bytes,
                                       int n) const {
  const std::vector<StepCost>& rounds = TreeRounds(n);
  double one_way = 0;  // reduce (or broadcast) direction
  for (const StepCost& round : rounds) {
    one_way += params().hop_latency.ToSeconds() * round.max_hops +
               static_cast<double>(bytes) / round.min_rate;
  }
  // AllReduce = reduce + mirror broadcast; gather/scatter and broadcast pay
  // one direction.
  const double seconds =
      (kind == CollectiveKind::kAllReduce) ? 2 * one_way : one_way;
  return Duration::Seconds(seconds);
}

Duration FlowCollectiveModel::Time(CollectiveKind kind, Bytes bytes,
                                   int n) const {
  PW_CHECK_GE(n, 1);
  PW_CHECK_GE(bytes, 0);
  if (n == 1) return params().launch_overhead;
  PW_CHECK_LE(n, torus_->num_nodes())
      << "gang larger than the torus it runs on";

  Duration phases;
  switch (kind) {
    case CollectiveKind::kAllReduce:
      // Size-based algorithm choice: whichever schedule finishes first.
      phases = std::min(RingTime(kind, bytes, n), TreeTime(kind, bytes, n));
      break;
    case CollectiveKind::kAllGather:
    case CollectiveKind::kReduceScatter:
      phases = RingTime(kind, bytes, n);
      break;
    case CollectiveKind::kBroadcast:
      phases = std::min(RingTime(kind, bytes, n), TreeTime(kind, bytes, n));
      break;
  }
  return params().launch_overhead + phases;
}

}  // namespace pw::net
