// Multi-tenant serving under open-loop traffic: N weighted clients drive
// Poisson arrivals through bounded admission queues into the weighted-stride
// gang scheduler, swept over clients x arrival-rate x shed-policy via
// SweepRunner. Reproduces the paper's Figure-9 proportional-share result in
// the serving regime (offered load independent of completion rate) instead
// of saturated closed loops, and regression-gates the stride pass-rebase
// fix: under overload every client's achieved goodput share must stay
// within tolerance of its weight fraction (5% full run, 10% --quick), or
// the binary exits non-zero. The sweep is also run a second time on a
// single thread and compared byte-for-byte against the multi-threaded
// table (the SweepRunner determinism contract).
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pathways/pathways.h"
#include "workload/workload.h"
#include "xlasim/compiled_function.h"

namespace {

using namespace pw;

// Nominal whole-pod service rate for the 330us/step 16-core scenario below;
// arrival scales are relative to this. Only the overload classification
// depends on it, and only loosely (scale 4 is far past saturation).
constexpr double kNominalPodPerSec = 2500.0;

constexpr int kMaxClients = 4;

// Per-tenant admission-queue bound; also sizes every recorder's depth
// histogram so the per-tenant recorders and the merged fleet view share a
// bucket layout.
constexpr std::size_t kQueueCapacity = 64;

bool Overloaded(double scale, int clients, const std::vector<double>& w) {
  // Proportional share only binds while every client is backlogged: the
  // largest-weight client must be offered more than its weighted share of
  // capacity. 1.25x margin keeps marginal points out of the gate.
  double wsum = 0, wmax = 0;
  for (double x : w) {
    wsum += x;
    wmax = std::max(wmax, x);
  }
  return scale >= 1.25 * static_cast<double>(clients) * wmax / wsum;
}

sweep::Metrics MeasurePoint(const sweep::ParamPoint& p, bool quick) {
  using namespace pw::pathways;
  using namespace pw::workload;
  const int clients = static_cast<int>(p.GetInt("clients"));
  const double scale = p.GetDouble("rate_scale");
  const std::string& policy = p.GetString("policy");

  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigB(&sim, /*hosts=*/2);  // 16 cores
  PathwaysOptions options;
  options.policy = SchedulerPolicy::kWeightedStride;
  options.max_inflight_gangs = 2;  // shallow window: the policy decides often
  PathwaysRuntime runtime(cluster.get(), options);

  const Duration warmup = Duration::Millis(quick ? 20 : 80);
  const Duration horizon = Duration::Millis(quick ? 150 : 800);

  std::vector<double> weights(static_cast<std::size_t>(clients));
  double wsum = 0;
  for (int i = 0; i < clients; ++i) {
    weights[static_cast<std::size_t>(i)] = static_cast<double>(1 << i);
    wsum += weights[static_cast<std::size_t>(i)];
  }

  const int shards = cluster->num_devices();
  std::vector<std::unique_ptr<PathwaysProgram>> programs;
  std::vector<std::unique_ptr<OpenLoopGenerator>> gens;
  std::vector<Client*> tenants;
  for (int i = 0; i < clients; ++i) {
    Client* client = runtime.CreateClient(weights[static_cast<std::size_t>(i)]);
    tenants.push_back(client);
    auto slice = client->AllocateSlice(shards).value();
    ProgramBuilder pb("serve" + std::to_string(i));
    pb.Call(xlasim::CompiledFunction::Synthetic(
                "infer", shards, Duration::Micros(330),
                net::CollectiveKind::kAllReduce, 64),
            slice, {});
    programs.push_back(
        std::make_unique<PathwaysProgram>(std::move(pb).Build()));

    OpenLoopSpec spec;
    spec.process = ArrivalProcess::kPoisson;
    // Equal offered load per client: shares then reflect the scheduler's
    // weights, not the arrival mix.
    spec.rate_per_sec = scale * kNominalPodPerSec / clients;
    spec.horizon = horizon;
    spec.seed = 0xC0FFEE + 1000 * p.index() + static_cast<std::uint64_t>(i);
    AdmissionOptions adm;
    adm.capacity = kQueueCapacity;
    // Larger than max_inflight_gangs so the stride scheduler — not each
    // client's submit round-trip — is the bottleneck under overload.
    adm.max_outstanding = 6;
    adm.policy = policy == "reject-retry" ? ShedPolicy::kRejectWithRetry
                                          : ShedPolicy::kDropTail;
    adm.retry.max_attempts = 5;
    adm.retry.initial_backoff = Duration::Micros(200);
    adm.retry.max_backoff = Duration::Millis(5);
    gens.push_back(std::make_unique<OpenLoopGenerator>(
        client, programs.back().get(), spec, adm));
    gens.back()->Start();
  }

  // Every reported metric covers the same steady-state window
  // [warmup, horizon): at warmup the counters are snapshotted, the
  // distribution state (latency samples, depth histograms) is reset, and
  // the scheduler's cumulative per-client accounting is baselined.
  std::vector<std::int64_t> base(static_cast<std::size_t>(clients), 0);
  std::int64_t base_arrivals = 0, base_sheds = 0, base_gangs = 0;
  double base_wait_us = 0;
  sim.ScheduleAt(TimePoint() + warmup, [&] {
    for (int i = 0; i < clients; ++i) {
      LatencyRecorder& r = gens[static_cast<std::size_t>(i)]->recorder();
      base[static_cast<std::size_t>(i)] = r.completions();
      base_arrivals += r.arrivals();
      base_sheds += r.sheds();
      r.BeginMeasurementWindow();
    }
    for (Client* t : tenants) {
      const auto stats = runtime.SchedStatsFor(t->id());
      base_gangs += stats.gangs_dispatched;
      base_wait_us += stats.queue_wait.ToMicros();
    }
  });
  sim.RunUntil(TimePoint() + horizon);

  const double window_s = (horizon - warmup).ToSeconds();
  std::vector<double> goodput(static_cast<std::size_t>(clients));
  double total = 0;
  std::int64_t arrivals = 0, sheds = 0, gangs = 0;
  double wait_us = 0;
  for (int i = 0; i < clients; ++i) {
    const LatencyRecorder& r = gens[static_cast<std::size_t>(i)]->recorder();
    goodput[static_cast<std::size_t>(i)] = static_cast<double>(
        r.completions() - base[static_cast<std::size_t>(i)]);
    total += goodput[static_cast<std::size_t>(i)];
    arrivals += r.arrivals();
    sheds += r.sheds();
  }
  arrivals -= base_arrivals;
  sheds -= base_sheds;
  for (Client* t : tenants) {
    const auto stats = runtime.SchedStatsFor(t->id());
    gangs += stats.gangs_dispatched;
    wait_us += stats.queue_wait.ToMicros();
  }
  gangs -= base_gangs;
  wait_us -= base_wait_us;
  const std::int64_t rebases = runtime.total_pass_rebases();

  LatencyRecorder merged(kQueueCapacity);
  for (const auto& g : gens) merged.Merge(g->recorder());

  // Everything was sampled at the horizon; now drain the backlog (arrivals
  // have stopped) so no in-flight execution is torn down mid-run.
  sim.Run();

  const bool overloaded = Overloaded(scale, clients, weights);
  sweep::Metrics m;
  double share_err_max = 0;
  for (int i = 0; i < kMaxClients; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::string suffix = "_c" + std::to_string(i);
    if (i >= clients) continue;
    const double share = total > 0 ? goodput[idx] / total : 0.0;
    const double target = weights[idx] / wsum;
    if (overloaded && target > 0) {
      share_err_max = std::max(share_err_max,
                               std::abs(share - target) / target);
    }
    m.emplace_back("share" + suffix, share);
    m.emplace_back("target" + suffix, target);
    m.emplace_back("goodput_per_s" + suffix, goodput[idx] / window_s);
  }
  m.emplace_back("goodput_total_per_s", total / window_s);
  m.emplace_back("share_err_max", share_err_max);
  m.emplace_back("overloaded", overloaded ? 1.0 : 0.0);
  m.emplace_back("shed_frac",
                 arrivals > 0 ? static_cast<double>(sheds) /
                                    static_cast<double>(arrivals)
                              : 0.0);
  m.emplace_back("p50_us", merged.LatencyUs(50));
  m.emplace_back("p95_us", merged.LatencyUs(95));
  m.emplace_back("p99_us", merged.LatencyUs(99));
  // Admission-queue depth a typical arrival found, and the slice of
  // end-to-end latency spent waiting in the *scheduler's* queues (per
  // dispatched gang) — together they locate where requests spend their
  // time as overload grows.
  m.emplace_back("qdepth_mean", merged.MeanQueueDepth());
  m.emplace_back("sched_wait_us_per_gang",
                 gangs > 0 ? wait_us / static_cast<double>(gangs) : 0.0);
  m.emplace_back("pass_rebases", static_cast<double>(rebases));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const pw::bench::Args args = pw::bench::Args::Parse(argc, argv);
  pw::bench::Header(
      "Multi-tenant open-loop serving: proportional share under overload",
      "Fig. 9's weighted shares (1:2:4:8) hold under open-loop serving "
      "traffic, not just saturated closed loops");

  pw::sweep::ParamGrid grid;
  grid.AxisInts("clients", args.quick ? std::vector<std::int64_t>{4}
                                      : std::vector<std::int64_t>{2, 4})
      .AxisDoubles("rate_scale", args.quick ? std::vector<double>{0.5, 4.0}
                                            : std::vector<double>{0.5, 1.5, 4.0})
      .AxisStrings("policy", {"drop-tail", "reject-retry"});

  auto point_fn = [&args](const pw::sweep::ParamPoint& p) {
    return MeasurePoint(p, args.quick);
  };
  pw::sweep::SweepRunner runner;  // hardware_concurrency threads
  pw::sweep::ResultTable table = runner.Run(grid, point_fn);

  // Determinism gate: the identical sweep on one thread must serialize to
  // the identical table.
  pw::sweep::SweepRunner serial(pw::sweep::SweepRunner::Options{.threads = 1});
  pw::sweep::ResultTable table1 = serial.Run(grid, point_fn);
  std::ostringstream csv_mt, csv_1t;
  table.WriteCsv(csv_mt);
  table1.WriteCsv(csv_1t);
  const bool deterministic = csv_mt.str() == csv_1t.str();

  std::printf("%8s %10s %13s %11s %9s %9s %10s %10s\n", "clients",
              "rate_scale", "policy", "share_err", "shed", "p50(us)",
              "p99(us)", "overload");
  double gate_err = 0;
  const auto points = grid.Points();
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    const auto& row = table.rows()[i];
    const auto& p = points[i];
    const double err = pw::bench::MetricOf(row, "share_err_max");
    const bool overloaded = pw::bench::MetricOf(row, "overloaded") > 0.5;
    if (overloaded) gate_err = std::max(gate_err, err);
    std::printf("%8lld %10.2f %13s %10.1f%% %8.1f%% %9.0f %10.0f %10s\n",
                static_cast<long long>(p.GetInt("clients")),
                p.GetDouble("rate_scale"), p.GetString("policy").c_str(),
                100 * err, 100 * pw::bench::MetricOf(row, "shed_frac"),
                pw::bench::MetricOf(row, "p50_us"), pw::bench::MetricOf(row, "p99_us"),
                overloaded ? "yes" : "no");
  }
  std::printf("\ndeterminism across SweepRunner thread counts: %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  pw::bench::Reporter report("multitenant", args);
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    report.AddRow(table.rows()[i].params, table.rows()[i].metrics);
  }
  const double tolerance = args.quick ? 0.10 : 0.05;
  report.Summary("max_share_err_overloaded", gate_err);
  report.Summary("share_tolerance", tolerance);
  report.Summary("deterministic", deterministic ? 1.0 : 0.0);
  report.Write();

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
    return 1;
  }
  if (gate_err > tolerance) {
    std::fprintf(stderr,
                 "FAIL: achieved share off weight fraction by %.1f%% "
                 "(tolerance %.0f%%) under overload\n",
                 100 * gate_err, 100 * tolerance);
    return 1;
  }
  std::printf("proportional-share gate: worst error %.1f%% <= %.0f%%\n",
              100 * gate_err, 100 * tolerance);
  return 0;
}
