// Multi-tenant serving under open-loop traffic: N weighted clients drive
// Poisson arrivals through bounded admission queues into the weighted-stride
// gang scheduler, swept over clients x arrival-rate x shed-policy.
// Reproduces the paper's Figure-9 proportional-share result in the serving
// regime, and regression-gates the stride pass-rebase fix: under overload
// every client's achieved goodput share must stay within tolerance of its
// weight fraction (5% full run, 10% --quick), or the binary exits non-zero.
//
// Thin wrapper: the measurement harness lives in the "multitenant" family
// (src/scenario/family_multitenant.cpp) and the grid/workload knobs in
// scenarios/multitenant.json (override with --scenario <file>). This main
// only prints the table and enforces the gates.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  const pw::bench::Args args =
      pw::bench::Args::Parse(argc, argv, pw::bench::kScenarioFlag);
  pw::bench::Header(
      "Multi-tenant open-loop serving: proportional share under overload",
      "Fig. 9's weighted shares (1:2:4:8) hold under open-loop serving "
      "traffic, not just saturated closed loops");

  const pw::scenario::Scenario s =
      pw::bench::LoadBenchScenario(args, "multitenant", "multitenant");
  const pw::scenario::RunResult result = pw::bench::RunBenchScenario(s, args);

  std::printf("%8s %10s %13s %11s %9s %9s %10s %10s\n", "clients",
              "rate_scale", "policy", "share_err", "shed", "p50(us)",
              "p99(us)", "overload");
  for (std::size_t i = 0; i < result.table.rows().size(); ++i) {
    const auto& row = result.table.rows()[i];
    const auto& p = result.points[i];
    const double err = pw::bench::MetricOf(row, "share_err_max");
    const bool overloaded = pw::bench::MetricOf(row, "overloaded") > 0.5;
    std::printf("%8lld %10.2f %13s %10.1f%% %8.1f%% %9.0f %10.0f %10s\n",
                static_cast<long long>(p.GetInt("clients")),
                p.GetDouble("rate_scale"), p.GetString("policy").c_str(),
                100 * err, 100 * pw::bench::MetricOf(row, "shed_frac"),
                pw::bench::MetricOf(row, "p50_us"),
                pw::bench::MetricOf(row, "p99_us"),
                overloaded ? "yes" : "no");
  }
  const bool deterministic =
      pw::bench::SummaryOf(result.summary, "deterministic") > 0.5;
  std::printf("\ndeterminism across SweepRunner thread counts: %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  const double gate_err =
      pw::bench::SummaryOf(result.summary, "max_share_err_overloaded");
  const double tolerance =
      pw::bench::SummaryOf(result.summary, "share_tolerance");
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
    return 1;
  }
  if (gate_err > tolerance) {
    std::fprintf(stderr,
                 "FAIL: achieved share off weight fraction by %.1f%% "
                 "(tolerance %.0f%%) under overload\n",
                 100 * gate_err, 100 * tolerance);
    return 1;
  }
  std::printf("proportional-share gate: worst error %.1f%% <= %.0f%%\n",
              100 * gate_err, 100 * tolerance);
  return 0;
}
