// Figure 6: smallest computation that masks Pathways' single-controller
// overhead relative to multi-controller JAX.
//
// Paper: parity at ~2.3 ms per computation for 16 hosts / 128 TPUs
// (config B) and ~35 ms for 512 hosts / 2048 TPUs (config A). In our
// calibration the overhead is the scheduler's per-device dispatch fan-out
// (17 us/device serialized on the coordinator thread): 128 x 17us = 2.2 ms,
// 2048 x 17us = 34.8 ms.
#include <algorithm>
#include <vector>

#include "bench_common.h"

namespace {

double MeasureJax(bool config_b, int hosts, pw::Duration compute) {
  using namespace pw;
  sim::Simulator sim;
  auto cluster = config_b ? hw::Cluster::ConfigB(&sim, hosts)
                          : hw::Cluster::ConfigA(&sim, hosts);
  baselines::JaxMultiController jax(cluster.get());
  baselines::MicrobenchSpec spec;
  spec.mode = baselines::CallMode::kOpByOp;
  spec.unit_compute = compute;
  spec.warmup = std::max(Duration::Millis(20), compute * 10);
  spec.measure = std::max(Duration::Millis(200), compute * 40);
  return jax.Measure(spec).computations_per_sec;
}

double MeasurePw(bool config_b, int hosts, pw::Duration compute) {
  using namespace pw;
  sim::Simulator sim;
  auto cluster = config_b ? hw::Cluster::ConfigB(&sim, hosts)
                          : hw::Cluster::ConfigA(&sim, hosts);
  baselines::PathwaysDriver pw_driver(cluster.get());
  baselines::MicrobenchSpec spec;
  // Per-computation dispatch, pipelined: each computation is its own
  // single-node program, several in flight (the PW-C regime with chain 1).
  spec.mode = baselines::CallMode::kChained;
  spec.chain_length = 1;
  spec.unit_compute = compute;
  spec.max_inflight_calls = 8;
  // Steady state needs the full in-flight window to drain through the
  // client thread (8 x ~35 ms at 2048 shards) before measuring.
  spec.warmup = std::max(Duration::Millis(400), compute * 12);
  spec.measure = std::max(Duration::Seconds(1.5), compute * 40);
  return pw_driver.Measure(spec).computations_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "Figure 6: throughput vs computation time, JAX vs Pathways",
      "parity at ~2.3 ms (16 hosts / 128 TPUs, config B) and ~35 ms "
      "(512 hosts / 2048 TPUs, config A)");

  struct Setup {
    const char* label;
    bool config_b;
    int hosts;
  };
  std::vector<Setup> setups = {{"16 hosts (B), 128 TPUs", true, 16},
                               {"512 hosts (A), 2048 TPUs", false, 512}};
  std::vector<double> compute_ms = {0.1, 0.33, 1.0, 2.3, 5.0,
                                    10.0, 35.0, 100.0};
  if (args.quick) {
    setups.resize(1);  // the 2048-TPU sweep dominates the full run's time
    compute_ms = {0.33, 2.3, 10.0};
  }

  bench::Reporter report("fig6_convergence", args);
  for (const Setup& s : setups) {
    std::printf("\n-- %s --\n", s.label);
    std::printf("%12s %14s %14s %8s\n", "compute(ms)", "JAX(comp/s)",
                "PW(comp/s)", "PW/JAX");
    double convergence_ms = -1;
    for (const double ms : compute_ms) {
      const double jax = MeasureJax(s.config_b, s.hosts, Duration::Millis(ms));
      const double pw_rate = MeasurePw(s.config_b, s.hosts, Duration::Millis(ms));
      const double ratio = pw_rate / jax;
      std::printf("%12.2f %14.1f %14.1f %8.3f\n", ms, jax, pw_rate, ratio);
      if (convergence_ms < 0 && ratio >= 0.95) convergence_ms = ms;
      report.AddRow({{"setup", std::string(s.label)}, {"compute_ms", ms}},
                    {{"jax_comp_per_sec", jax},
                     {"pw_comp_per_sec", pw_rate},
                     {"pw_over_jax", ratio}});
    }
    std::printf("measured convergence (PW >= 95%% of JAX): %.2f ms  "
                "[paper: %s]\n",
                convergence_ms, s.config_b ? "2.3 ms" : "35 ms");
    report.Summary(s.config_b ? "convergence_ms_configB"
                              : "convergence_ms_configA",
                   convergence_ms);
  }
  report.Write();
  return 0;
}
