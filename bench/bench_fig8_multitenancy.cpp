// Figure 8: aggregate throughput of concurrent client programs.
//
// Config B (16 hosts, 128 TPUs); per-computation device times of
// {0.04, 0.33, 1.04, 2.4} ms; each program is one gang-scheduled
// computation. Paper shape: both systems ramp with client count and
// saturate; Pathways' plateau meets or exceeds JAX's, especially for the
// smallest computations (no context-switch overhead; remote clients scale
// past local Python dispatch).
#include <memory>
#include <vector>

#include "bench_common.h"
#include "pathways/pathways.h"
#include "xlasim/compiled_function.h"

namespace {

// Single-computation programs (scalar AllReduce + add): one client cannot
// saturate the pod (per-client rate is bounded by its own dispatch work),
// so aggregate throughput ramps with client count until the devices are the
// bottleneck — the paper's Figure 8 shape.
double MeasurePwClients(int num_clients, pw::Duration compute) {
  using namespace pw;
  using namespace pw::pathways;
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigB(&sim, 16);
  PathwaysRuntime runtime(cluster.get(), PathwaysOptions{});
  const int shards = cluster->num_devices();
  std::int64_t computations = 0;
  bool counting = false;
  std::vector<std::unique_ptr<PathwaysProgram>> programs;
  std::vector<Client*> clients;
  for (int c = 0; c < num_clients; ++c) {
    Client* client = runtime.CreateClient();
    clients.push_back(client);
    auto slice = client->AllocateSlice(shards).value();
    ProgramBuilder pb("op");
    pb.Call(xlasim::CompiledFunction::Synthetic(
                "op", shards, compute, net::CollectiveKind::kAllReduce, 4),
            slice, {});
    programs.push_back(std::make_unique<PathwaysProgram>(std::move(pb).Build()));
  }
  struct Loop {
    Client* client;
    PathwaysProgram* prog;
    PathwaysRuntime* rt;
    std::int64_t* count;
    bool* counting;
    void Go() {
      client->Run(prog).Then([this](const ExecutionResult& r) {
        if (*counting) *count += 1;
        for (const auto& out : r.outputs) rt->object_store().Release(out.id);
        Go();
      });
    }
  };
  std::vector<std::unique_ptr<Loop>> loops;
  for (int c = 0; c < num_clients; ++c) {
    loops.push_back(std::make_unique<Loop>(Loop{
        clients[static_cast<std::size_t>(c)],
        programs[static_cast<std::size_t>(c)].get(), &runtime, &computations,
        &counting}));
    loops.back()->Go();
  }
  const Duration measure = Duration::Seconds(2);
  sim.RunFor(Duration::Millis(300));
  counting = true;
  sim.RunFor(measure);
  counting = false;
  return static_cast<double>(computations) / measure.ToSeconds();
}

// JAX: N concurrent jobs time-share the pod. Multi-controller jobs own all
// devices while running, so programs serialize with a context-switch cost
// (XLA program + buffer swap); per-host Python dispatch is shared.
double MeasureJaxClients(int num_clients, pw::Duration compute) {
  using namespace pw;
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigB(&sim, 16);
  const int shards = cluster->num_devices();
  const Duration program_body =
      cluster->island(0).collectives().AllReduce(4, shards) + compute;
  const Duration python = cluster->params().python_call_overhead;
  const Duration context_switch = Duration::Micros(150);

  // Serialized program executions; N clients keep the queue full as long as
  // N * (per-client think time) covers the program duration. Per-client
  // submission latency = python dispatch on the shared host interpreter.
  std::int64_t computations = 0;
  bool counting = false;
  sim::SerialResource pod(&sim, "pod");
  sim::SerialResource host_python(&sim, "python");
  struct ClientLoop {
    sim::Simulator* sim;
    sim::SerialResource* pod;
    sim::SerialResource* python;
    Duration body;
    Duration python_cost;
    Duration switch_cost;
    std::int64_t* count;
    bool* counting;
    int pending = 0;
    void Go() {
      python->Submit(python_cost, [this] {
        pod->Submit(switch_cost + body, [this] {
          if (*counting) *count += 1;
          Go();
        });
      });
    }
  };
  std::vector<std::unique_ptr<ClientLoop>> loops;
  for (int c = 0; c < num_clients; ++c) {
    loops.push_back(std::make_unique<ClientLoop>(
        ClientLoop{&sim, &pod, &host_python, program_body, python,
                   context_switch, &computations, &counting}));
    loops.back()->Go();
  }
  const Duration measure = Duration::Seconds(2);
  sim.RunFor(Duration::Millis(300));
  counting = true;
  sim.RunFor(measure);
  counting = false;
  return static_cast<double>(computations) / measure.ToSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "Figure 8: aggregate throughput vs number of clients (config B)",
      "PW >= JAX aggregate; PW max exceeds JAX for the smallest "
      "computations (0.04 ms)");

  const std::vector<double> compute_ms =
      args.quick ? std::vector<double>{0.04, 1.04}
                 : std::vector<double>{0.04, 0.33, 1.04, 2.4};
  const std::vector<int> clients =
      args.quick ? std::vector<int>{1, 8, 64}
                 : std::vector<int>{1, 2, 4, 8, 16, 32, 64, 128, 256};
  bench::Reporter report("fig8_multitenancy", args);
  for (const double ms : compute_ms) {
    std::printf("\n-- compute = %.2f ms --\n", ms);
    std::printf("%8s %14s %14s\n", "clients", "PW(comp/s)", "JAX(comp/s)");
    for (const int n : clients) {
      const double pw_rate = MeasurePwClients(n, Duration::Millis(ms));
      const double jax_rate = MeasureJaxClients(n, Duration::Millis(ms));
      std::printf("%8d %14.1f %14.1f\n", n, pw_rate, jax_rate);
      report.AddRow({{"compute_ms", ms}, {"clients", static_cast<std::int64_t>(n)}},
                    {{"pw_comp_per_sec", pw_rate},
                     {"jax_comp_per_sec", jax_rate}});
    }
  }
  report.Write();
  return 0;
}
