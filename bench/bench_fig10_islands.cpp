// Figure 10: pipelining across islands connected by DCN.
//
// Paper: the S=16, M=64 pipeline achieves the SAME throughput (131.4k
// tokens/s) on 4 islands of 32 cores each (config C) as on a single island
// of 128 cores (config B) — DCN transfers between stages are completely
// overlapped with computation.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "models/step_builder.h"
#include "pathways/pathways.h"

namespace {

double MeasurePipelined(bool multi_island) {
  using namespace pw;
  using namespace pw::pathways;
  constexpr int kStages = 16;
  constexpr int kMicro = 64;
  sim::Simulator sim;
  std::unique_ptr<hw::Cluster> cluster =
      multi_island ? hw::Cluster::ConfigC(&sim) : hw::Cluster::ConfigB(&sim, 16);
  PathwaysOptions options;
  options.max_inflight_gangs = 4 * kStages * kMicro;  // single-tenant: no throttle
  PathwaysRuntime runtime(cluster.get(), options);
  Client* client = runtime.CreateClient();
  models::TransformerConfig config = models::TransformerConfig::Decoder3B();
  models::StepBuilder builder(config, cluster->params());
  std::vector<VirtualSlice> slices;
  for (int s = 0; s < kStages; ++s) {
    // Config C: 4 stages per island (stages 0-3 on island 0, ...), so three
    // of the fifteen stage boundaries cross the DCN.
    const auto island = multi_island
                            ? std::optional<hw::IslandId>(hw::IslandId(s / 4))
                            : std::nullopt;
    slices.push_back(client->AllocateSlice(8, island).value());
  }
  auto program = builder.BuildGPipeProgram(slices, kMicro,
                                           cluster->island(0).collectives());
  const auto m = models::MeasureTraining(client, &program,
                                         config.tokens_per_batch, 3);
  if (multi_island) {
    std::printf("  DCN bytes per step: %.2f GiB (inter-stage activations)\n",
                static_cast<double>(cluster->dcn().bytes_sent()) /
                    (3.0 * 1024 * 1024 * 1024));
  }
  return m.tokens_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "Figure 10: 3B LM pipeline (S=16, M=64) on one island vs 4 islands",
      "same throughput on 4 islands x 32 cores (C) as 1 island x 128 (B): "
      "DCN transfers fully overlapped");

  const double single = MeasurePipelined(/*multi_island=*/false);
  const double multi = MeasurePipelined(/*multi_island=*/true);
  std::printf("%-32s %12s %12s\n", "configuration", "paper", "measured");
  std::printf("%-32s %11.1fk %11.1fk\n", "1 island x 128 cores (B)", 131.4,
              single / 1e3);
  std::printf("%-32s %11.1fk %11.1fk\n", "4 islands x 32 cores (C)", 131.4,
              multi / 1e3);
  std::printf("\nmulti-island / single-island = %.3f (paper: 1.00)\n",
              multi / single);
  bench::Reporter report("fig10_islands", args);
  report.AddRow({{"config", std::string("1x128_configB")}},
                {{"tokens_per_sec", single}});
  report.AddRow({{"config", std::string("4x32_configC")}},
                {{"tokens_per_sec", multi}});
  report.Summary("multi_over_single", multi / single);
  report.Write();
  return 0;
}
