// Figure 11 (appendix D): multi-tenancy drives accelerator utilization to
// ~100%. One client with a 0.33 ms per-computation program cannot saturate
// the pod; adding concurrent clients fills the gaps, with gang-scheduled
// interleaving at millisecond scale.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "pathways/pathways.h"
#include "xlasim/compiled_function.h"

namespace {

double MeasureUtilization(int num_clients, pw::sim::TraceRecorder** trace_out,
                          std::unique_ptr<pw::hw::Cluster>* cluster_out,
                          pw::sim::Simulator* sim) {
  using namespace pw;
  using namespace pw::pathways;
  auto cluster = hw::Cluster::ConfigB(sim, 4);
  PathwaysOptions options;
  options.policy = SchedulerPolicy::kWeightedStride;
  options.max_inflight_gangs = 4;
  auto runtime = std::make_unique<PathwaysRuntime>(cluster.get(), options);

  struct Loop {
    Client* client;
    PathwaysProgram* prog;
    PathwaysRuntime* rt;
    void Go() {
      client->Run(prog).Then([this](const ExecutionResult& r) {
        for (const auto& out : r.outputs) rt->object_store().Release(out.id);
        Go();
      });
    }
  };
  static std::vector<std::unique_ptr<PathwaysProgram>> programs;
  static std::vector<std::unique_ptr<Loop>> loops;
  static std::vector<std::unique_ptr<PathwaysRuntime>> runtimes;
  programs.clear();
  loops.clear();
  const int shards = cluster->num_devices();
  for (int c = 0; c < num_clients; ++c) {
    Client* client = runtime->CreateClient();
    auto slice = client->AllocateSlice(shards).value();
    ProgramBuilder pb("p" + std::to_string(c));
    pb.Call(xlasim::CompiledFunction::Synthetic(
                "work", shards, Duration::Micros(330),
                net::CollectiveKind::kAllReduce, 64),
            slice, {});
    programs.push_back(std::make_unique<PathwaysProgram>(std::move(pb).Build()));
    loops.push_back(std::make_unique<Loop>(
        Loop{client, programs.back().get(), runtime.get()}));
    loops.back()->Go();
  }
  sim->RunUntil(sim->now() + Duration::Millis(60));
  const TimePoint t1 = sim->now();
  const TimePoint t0 = t1 + Duration::Millis(-40.0);
  const double util = cluster->trace().MeanUtilization(t0, t1);
  if (trace_out != nullptr) *trace_out = &cluster->trace();
  runtimes.push_back(std::move(runtime));
  if (cluster_out != nullptr) *cluster_out = std::move(cluster);
  return util;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "Figure 11: accelerator utilization vs concurrent clients (0.33 ms "
      "computations, config B)",
      "1 client cannot saturate; multiple clients drive utilization to "
      "~100% with millisecond-scale interleaving");

  bench::Reporter report("fig11_util", args);
  double max_util = 0;
  std::printf("%8s %14s\n", "clients", "utilization");
  for (const int n : {1, 4, 8, 16}) {
    sim::Simulator sim;
    sim::TraceRecorder* trace = nullptr;
    std::unique_ptr<hw::Cluster> cluster;
    const double util = MeasureUtilization(n, &trace, &cluster, &sim);
    std::printf("%8d %13.1f%%\n", n, util * 100.0);
    report.AddRow({{"clients", static_cast<std::int64_t>(n)}},
                  {{"utilization", util}});
    if (util > max_util) max_util = util;
    if (n == 4) {
      const TimePoint t1 = sim.now();
      const TimePoint t0 = t1 + Duration::Millis(-2.0);
      std::printf("\n4-client trace slice (digit = client):\n%s\n",
                  trace->RenderAscii(t0, t1, 96, 4).c_str());
    }
  }
  report.Summary("max_utilization", max_util);
  report.Write();
  return 0;
}
