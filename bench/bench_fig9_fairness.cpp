// Figure 9: gang-scheduled interleaving of concurrent programs with
// proportional-share ratios 1:1:1:1 and 1:2:4:8 between 4 clients.
// Prints the measured per-client device-time shares and an ASCII render of
// a slice of the trace (the paper's Gantt-style figure).
#include <memory>
#include <vector>

#include "bench_common.h"
#include "pathways/pathways.h"
#include "xlasim/compiled_function.h"

namespace {

void RunShareExperiment(const std::vector<double>& weights,
                        pw::bench::Reporter* report) {
  using namespace pw;
  using namespace pw::pathways;
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigB(&sim, 4);  // 32 cores
  PathwaysOptions options;
  options.policy = SchedulerPolicy::kWeightedStride;
  options.max_inflight_gangs = 2;  // shallow window: policy decides often
  PathwaysRuntime runtime(cluster.get(), options);

  struct Loop {
    Client* client;
    PathwaysProgram* prog;
    PathwaysRuntime* rt;
    void Go() {
      client->Run(prog).Then([this](const ExecutionResult& r) {
        for (const auto& out : r.outputs) rt->object_store().Release(out.id);
        Go();
      });
    }
  };
  std::vector<std::unique_ptr<PathwaysProgram>> programs;
  std::vector<std::unique_ptr<Loop>> loops;
  const int shards = cluster->num_devices();
  for (std::size_t c = 0; c < weights.size(); ++c) {
    Client* client = runtime.CreateClient(weights[c]);
    auto slice = client->AllocateSlice(shards).value();
    ProgramBuilder pb("p" + std::to_string(c));
    pb.Call(xlasim::CompiledFunction::Synthetic(
                "work", shards, Duration::Micros(330),
                net::CollectiveKind::kAllReduce, 64),
            slice, {});
    programs.push_back(std::make_unique<PathwaysProgram>(std::move(pb).Build()));
    // Two programs in flight per client keep every queue busy.
    for (int k = 0; k < 2; ++k) {
      loops.push_back(std::make_unique<Loop>(
          Loop{client, programs.back().get(), &runtime}));
      loops.back()->Go();
    }
  }
  sim.RunUntil(TimePoint() + Duration::Millis(80));

  const TimePoint t0 = TimePoint() + Duration::Millis(20);
  const TimePoint t1 = TimePoint() + Duration::Millis(80);
  auto busy = cluster->trace().BusyPerClient(t0, t1);
  double total = 0;
  for (const auto& [client, dur] : busy) total += dur.ToSeconds();
  std::printf("weights:");
  for (double w : weights) std::printf(" %.0f", w);
  std::printf("\n%8s %12s %12s %12s\n", "client", "busy(ms)", "share",
              "target");
  double weight_sum = 0;
  for (double w : weights) weight_sum += w;
  std::string weights_label;
  for (double w : weights) {
    if (!weights_label.empty()) weights_label += ":";
    weights_label += std::to_string(static_cast<int>(w));
  }
  for (const auto& [client, dur] : busy) {
    if (client < 0) continue;
    const double share = 100.0 * dur.ToSeconds() / total;
    const double target =
        100.0 * weights[static_cast<std::size_t>(client)] / weight_sum;
    std::printf("%8lld %12.2f %11.1f%% %11.1f%%\n",
                static_cast<long long>(client), dur.ToMillis() / 32.0, share,
                target);
    report->AddRow({{"weights", weights_label}, {"client", client}},
                   {{"busy_ms", dur.ToMillis() / 32.0},
                    {"share_pct", share},
                    {"target_pct", target}});
  }
  std::printf("\ntrace (4 of 32 cores, 2 ms window; digit = client):\n%s\n",
              cluster->trace()
                  .RenderAscii(t0, t0 + Duration::Millis(2), 96, /*max_rows=*/4)
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const pw::bench::Args args = pw::bench::Args::Parse(argc, argv);
  pw::bench::Header(
      "Figure 9: proportional-share gang scheduling across 4 clients",
      "scheduler enforces 1:1:1:1 and 1:2:4:8 shares; programs interleave "
      "at millisecond scale with no context-switch overhead");
  pw::bench::Reporter report("fig9_fairness", args);
  RunShareExperiment({1, 1, 1, 1}, &report);
  std::printf("\n");
  RunShareExperiment({1, 2, 4, 8}, &report);
  report.Write();
  return 0;
}
