// Wall-clock microbenchmarks of the simulation substrate itself: event
// throughput of the pooled-event engine vs the pre-overhaul engine, plus
// handle-cancellation and periodic-timer costs. These bound how large a
// cluster the figure benches can afford to model.
//
// Needs no external dependency: a built-in timing loop measures
// events/second and writes BENCH_simcore.json via the sweep result
// emission. The pre-PR engine (binary heap of std::function events, as of
// commit 2e93231) is kept below as LegacySimulator so the speedup claim
// stays measurable on any machine. When the build found Google Benchmark
// (PWSIM_HAVE_GBENCH), `--gbench` additionally runs the google-benchmark
// suite for calibrated per-op numbers.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "bench_common.h"
#include "sim/future.h"
#include "sim/simulator.h"

namespace {

using namespace pw;

// --------------------------------------------------------------------- //
// The pre-overhaul engine, verbatim (minus probes): one heap-owned
// std::function per event, moved through the priority queue on every sift.
class LegacySimulator {
 public:
  TimePoint now() const { return now_; }

  void Schedule(Duration delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  void ScheduleAt(TimePoint at, std::function<void()> fn) {
    PW_CHECK_GE(at.nanos(), now_.nanos()) << "cannot schedule in the past";
    events_.push(Event{at, next_seq_++, std::move(fn)});
  }

  std::int64_t Run() {
    std::int64_t n = 0;
    while (!events_.empty()) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      PW_CHECK_GE(ev.at.nanos(), now_.nanos());
      now_ = ev.at;
      ev.fn();
      ++n;
    }
    return n;
  }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return b.at < a.at;
      return b.seq < a.seq;
    }
  };
  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
};

// --------------------------------------------------------------------- //
// Workloads, engine-generic. Each returns the number of events executed.

// Pre-scheduled burst of trivial (captureless) events at scattered times:
// pure heap push/pop cost.
template <typename Sim>
std::int64_t WorkloadEmpty(Sim& sim, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    sim.Schedule(Duration::Nanos((i * 7919) % 997), [] {});
  }
  sim.Run();
  return n;
}

// 40-byte captures: over std::function's inline buffer (heap allocation per
// event in the legacy engine), within PooledCallback's 48-byte buffer (no
// allocation in the pooled engine). This is the realistic case — most sim
// callbacks capture `this` plus a few values.
// Defeats dead-code elimination of the callback bodies below.
volatile std::int64_t g_capture_sink = 0;

template <typename Sim>
std::int64_t WorkloadCapture40(Sim& sim, std::int64_t n) {
  std::int64_t sink = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t a = i, b = i * 3, c = i * 5, d = i * 7;
    sim.Schedule(Duration::Nanos((i * 31) % 811),
                 [&sink, a, b, c, d] { sink += a ^ b ^ c ^ d; });
  }
  sim.Run();
  g_capture_sink = sink;
  return n;
}

// Steady-state churn: 256 self-rescheduling chains, each event scheduling
// its successor — the free-list recycling path, and the shape the Pathways
// runtime actually produces (bounded live set, high turnover).
template <typename Sim>
std::int64_t WorkloadChurn(Sim& sim, std::int64_t n) {
  struct Chain {
    Sim* sim;
    std::int64_t budget;
    std::uint64_t rng;
    void Fire() {
      if (--budget <= 0) return;
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      sim->Schedule(Duration::Nanos(static_cast<std::int64_t>((rng >> 33) & 1023)),
                    [this] { Fire(); });
    }
  };
  constexpr int kChains = 256;
  std::vector<std::unique_ptr<Chain>> chains;
  chains.reserve(kChains);
  for (int c = 0; c < kChains; ++c) {
    chains.push_back(std::make_unique<Chain>(
        Chain{&sim, n / kChains, 0x9E3779B97F4A7C15ULL * (c + 1)}));
    Chain* chain = chains.back().get();
    sim.Schedule(Duration::Nanos(c), [chain] { chain->Fire(); });
  }
  sim.Run();
  return kChains * (n / kChains);
}

// Zero-delay storms: 256 chains of events firing at the *current* instant,
// each callback scheduling its successor with Duration::Zero(). This is
// the dominant event shape in the actual simulator — every SimFuture
// Then(), WhenAll() completion, and device wakeup is a zero-delay event —
// and the pooled engine services it from the O(1) now-ring instead of the
// heap.
template <typename Sim>
std::int64_t WorkloadZeroDelay(Sim& sim, std::int64_t n) {
  struct Chain {
    Sim* sim;
    std::int64_t budget;
    void Fire() {
      if (--budget <= 0) return;
      sim->Schedule(Duration::Zero(), [this] { Fire(); });
    }
  };
  constexpr int kChains = 256;
  std::vector<std::unique_ptr<Chain>> chains;
  chains.reserve(kChains);
  for (int c = 0; c < kChains; ++c) {
    chains.push_back(std::make_unique<Chain>(Chain{&sim, n / kChains}));
    Chain* chain = chains.back().get();
    sim.Schedule(Duration::Zero(), [chain] { chain->Fire(); });
  }
  sim.Run();
  return kChains * (n / kChains);
}

// Realistic mix calibrated on the Pathways runtime's traffic: ~3/4 of
// events are zero-delay completions, the rest land at scattered future
// times (kernel durations, link latencies, scheduler costs).
template <typename Sim>
std::int64_t WorkloadMixed(Sim& sim, std::int64_t n) {
  struct Chain {
    Sim* sim;
    std::int64_t budget;
    std::uint64_t rng;
    void Fire() {
      if (--budget <= 0) return;
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      const bool timed = ((rng >> 33) & 3) == 0;  // 1 in 4
      const Duration d = timed
          ? Duration::Nanos(static_cast<std::int64_t>((rng >> 35) & 2047))
          : Duration::Zero();
      sim->Schedule(d, [this] { Fire(); });
    }
  };
  constexpr int kChains = 256;
  std::vector<std::unique_ptr<Chain>> chains;
  chains.reserve(kChains);
  for (int c = 0; c < kChains; ++c) {
    chains.push_back(std::make_unique<Chain>(
        Chain{&sim, n / kChains, 0xDEADBEEFCAFEF00DULL * (c + 1)}));
    Chain* chain = chains.back().get();
    sim.Schedule(Duration::Nanos(c & 7), [chain] { chain->Fire(); });
  }
  sim.Run();
  return kChains * (n / kChains);
}

// --------------------------------------------------------------------- //
// Pooled-engine-only workloads (the legacy engine has no handles/timers).

std::int64_t WorkloadCancelHalf(sim::Simulator& sim, std::int64_t n) {
  std::vector<sim::EventHandle> handles;
  handles.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    handles.push_back(
        sim.Schedule(Duration::Nanos((i * 13) % 701), [] {}));
  }
  for (std::int64_t i = 0; i < n; i += 2) {
    sim.Cancel(handles[static_cast<std::size_t>(i)]);
  }
  sim.Run();
  return n;  // n/2 fire + n/2 cancelled tombstones processed
}

std::int64_t WorkloadPeriodic(sim::Simulator& sim, std::int64_t n) {
  constexpr int kTimers = 64;
  std::vector<sim::EventHandle> timers;
  for (int t = 0; t < kTimers; ++t) {
    timers.push_back(
        sim.SchedulePeriodic(Duration::Nanos(100 + t), [] {}));
  }
  sim.RunFor(Duration::Nanos(100 * (n / kTimers)));
  for (const auto& h : timers) sim.Cancel(h);
  sim.Run();
  return sim.events_executed();
}

// --------------------------------------------------------------------- //

double BestRateOf(int reps, const std::function<std::int64_t()>& run) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const std::int64_t events = run();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    const double rate = static_cast<double>(events) / wall.count();
    if (rate > best) best = rate;
  }
  return best;
}

// Like BestRateOf, but per-rep setup (simulator construction, pool
// prebuild) stays outside the timed window.
double BestRateWithSetup(
    int reps, const std::function<void(sim::Simulator&)>& setup,
    const std::function<std::int64_t(sim::Simulator&)>& run) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    sim::Simulator sim;
    setup(sim);
    const auto start = std::chrono::steady_clock::now();
    const std::int64_t events = run(sim);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    const double rate = static_cast<double>(events) / wall.count();
    if (rate > best) best = rate;
  }
  return best;
}

#ifdef PWSIM_HAVE_GBENCH
void RunGoogleBenchmarkSuite(int argc, char** argv);
#endif

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::Parse(argc, argv, bench::kSimcoreFlags);
  // --min-speedup <x>: the enforced acceptance bar (default 2.0). CI on
  // shared runners passes a lower value so noisy-neighbor slowdowns don't
  // flake the job while gross regressions still fail.
  const double min_speedup = args.min_speedup;
  if (args.gbench) {
#ifdef PWSIM_HAVE_GBENCH
    RunGoogleBenchmarkSuite(argc, argv);
    return 0;
#else
    std::fprintf(stderr,
                 "--gbench requested but Google Benchmark was not available "
                 "at build time\n");
    return 2;
#endif
  }
  bench::Header(
      "simcore: event-engine throughput, pooled engine vs pre-PR engine",
      "infrastructure bench (no paper figure); acceptance: pooled >= 2x "
      "legacy events/sec");

  const std::int64_t n = args.quick ? 100'000 : 1'000'000;
  const int reps = args.quick ? 2 : 3;

  // Comparable workloads run through the sweep machinery (single thread:
  // wall-clock timing must not be perturbed by sibling measurements).
  sweep::ParamGrid grid;
  grid.AxisStrings("workload",
                   {"empty", "capture40", "churn", "zerodelay", "mixed"})
      .AxisStrings("engine", {"legacy", "pooled"});
  sweep::SweepRunner runner({.threads = 1});
  sweep::ResultTable table =
      runner.Run(grid, [&](const sweep::ParamPoint& p) -> sweep::Metrics {
        const std::string& workload = p.GetString("workload");
        const bool pooled = p.GetString("engine") == "pooled";
        auto dispatch = [&](auto& sim) -> std::int64_t {
          if (workload == "empty") return WorkloadEmpty(sim, n);
          if (workload == "capture40") return WorkloadCapture40(sim, n);
          if (workload == "zerodelay") return WorkloadZeroDelay(sim, n);
          if (workload == "mixed") return WorkloadMixed(sim, n);
          return WorkloadChurn(sim, n);
        };
        auto once = [&]() -> std::int64_t {
          if (pooled) {
            sim::Simulator sim;
            return dispatch(sim);
          }
          LegacySimulator sim;
          return dispatch(sim);
        };
        return {{"events_per_sec", BestRateOf(reps, once)}};
      });

  // Pair up legacy/pooled rates per workload for the report.
  std::printf("%-12s %16s %16s %10s   (%lld events/run)\n", "workload",
              "legacy (ev/s)", "pooled (ev/s)", "speedup",
              static_cast<long long>(n));
  bench::Reporter report("simcore", args);
  double geomean = 1.0;
  double pooled_geomean = 1.0;
  double legacy_geomean = 1.0;
  int workloads = 0;
  std::vector<std::pair<const char*, double>> per_case_speedups;
  for (const char* workload :
       {"empty", "capture40", "churn", "zerodelay", "mixed"}) {
    double legacy = 0, pooled = 0;
    for (const auto& row : table.rows()) {
      if (std::get<std::string>(row.params[0].second) != workload) continue;
      const double rate = row.metrics[0].second;
      (std::get<std::string>(row.params[1].second) == "pooled" ? pooled
                                                               : legacy) = rate;
    }
    const double speedup = pooled / legacy;
    std::printf("%-12s %16.0f %16.0f %9.2fx\n", workload, legacy, pooled,
                speedup);
    report.AddRow({{"workload", std::string(workload)}},
                  {{"legacy_events_per_sec", legacy},
                   {"pooled_events_per_sec", pooled},
                   {"speedup", speedup}});
    geomean *= speedup;
    pooled_geomean *= pooled;
    legacy_geomean *= legacy;
    per_case_speedups.emplace_back(workload, speedup);
    ++workloads;
  }
  geomean = std::pow(geomean, 1.0 / workloads);
  pooled_geomean = std::pow(pooled_geomean, 1.0 / workloads);
  legacy_geomean = std::pow(legacy_geomean, 1.0 / workloads);

  // Handle/timer features (pooled engine only — the legacy engine cannot
  // express them).
  {
    const double cancel = BestRateWithSetup(
        reps,
        [&](sim::Simulator& sim) {
          sim.ReserveEvents(static_cast<std::size_t>(n));
        },
        [&](sim::Simulator& sim) { return WorkloadCancelHalf(sim, n); });
    const double periodic = BestRateWithSetup(
        reps, [](sim::Simulator&) {},
        [&](sim::Simulator& sim) { return WorkloadPeriodic(sim, n); });
    std::printf("%-12s %16s %16.0f\n", "cancel-half", "-", cancel);
    std::printf("%-12s %16s %16.0f\n", "periodic", "-", periodic);
    report.AddRow({{"workload", std::string("cancel-half")}},
                  {{"pooled_events_per_sec", cancel}});
    report.AddRow({{"workload", std::string("periodic")}},
                  {{"pooled_events_per_sec", periodic}});
  }

  std::printf("\ngeomean speedup (pooled / legacy): %.2fx\n", geomean);
  report.Summary("events_per_sec", pooled_geomean);
  report.Summary("legacy_events_per_sec", legacy_geomean);
  report.Summary("speedup_vs_legacy", geomean);
  report.Write();
  // Enforce the acceptance bars so CI fails on an engine perf regression.
  // Full-size runs only: --quick's small event counts sit in a cache
  // regime that underestimates the heap-bound workloads.
  //   1. The geomean must clear --min-speedup (headline claim).
  //   2. Every individual workload must be at least as fast as the legacy
  //      engine: a geomean carried by zerodelay must not paper over a
  //      regression on a specific engine path (this caught the pooled
  //      engine losing to the legacy one on `churn` before the timing
  //      wheel landed).
  bool below_bar = !args.quick && geomean < min_speedup;
  constexpr double kPerWorkloadFloor = 1.0;
  bool case_regressed = false;
  for (const auto& [workload, speedup] : per_case_speedups) {
    if (speedup < kPerWorkloadFloor) case_regressed = true;
  }
  if (below_bar || (!args.quick && case_regressed)) {
    if (below_bar) {
      std::fprintf(stderr,
                   "FAIL: pooled/legacy geomean speedup %.2fx is below the "
                   "%.2fx acceptance bar\n",
                   geomean, min_speedup);
    } else {
      std::fprintf(stderr,
                   "FAIL: a workload regressed below %.2fx of the legacy "
                   "engine (geomean %.2fx is fine)\n",
                   kPerWorkloadFloor, geomean);
    }
    // Per-case ratios make the CI log actionable: a regression localized to
    // one workload (e.g. only `zerodelay`) points at a specific engine path
    // rather than generic machine noise.
    for (const auto& [workload, speedup] : per_case_speedups) {
      std::fprintf(stderr, "  %-12s %5.2fx%s\n", workload, speedup,
                   speedup < min_speedup || speedup < kPerWorkloadFloor
                       ? "  <-- below bar"
                       : "");
    }
    return 1;
  }
  return 0;
}

// --------------------------------------------------------------------- //
#ifdef PWSIM_HAVE_GBENCH
#include <benchmark/benchmark.h>

#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "xlasim/compiled_function.h"

namespace {

void BM_EventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int bn = static_cast<int>(state.range(0));
    for (int i = 0; i < bn; ++i) {
      sim.Schedule(Duration::Nanos(i % 997), [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventLoop)->Arg(1000)->Arg(100000);

void BM_FutureFanout(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::SimPromise<int> p(&sim);
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      p.future().Then([&sink](const int& v) { sink += v; });
    }
    p.Set(1);
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FutureFanout)->Arg(1000)->Arg(10000);

void BM_SingleNodeProgram(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    auto cluster = hw::Cluster::ConfigA(&sim, static_cast<int>(state.range(0)));
    pathways::PathwaysRuntime runtime(cluster.get(), {});
    pathways::Client* client = runtime.CreateClient();
    auto slice = client->AllocateSlice(cluster->num_devices()).value();
    auto fn = xlasim::CompiledFunction::Synthetic(
        "op", cluster->num_devices(), Duration::Micros(100),
        net::CollectiveKind::kAllReduce, 4);
    auto r = client->RunFunction(fn, slice);
    sim.Run();
    benchmark::DoNotOptimize(r.ready());
  }
}
BENCHMARK(BM_SingleNodeProgram)->Arg(2)->Arg(16)->Arg(64);

void RunGoogleBenchmarkSuite(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
}

}  // namespace
#endif  // PWSIM_HAVE_GBENCH
