// Wall-clock microbenchmarks of the simulation substrate itself (google-
// benchmark): event throughput, future fan-out, end-to-end program cost.
// These bound how large a cluster the figure benches can afford to model.
#include <benchmark/benchmark.h>

#include <memory>

#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "sim/future.h"
#include "sim/simulator.h"
#include "xlasim/compiled_function.h"

namespace {

using namespace pw;

void BM_EventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.Schedule(Duration::Nanos(i % 997), [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventLoop)->Arg(1000)->Arg(100000);

void BM_FutureFanout(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::SimPromise<int> p(&sim);
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      p.future().Then([&sink](const int& v) { sink += v; });
    }
    p.Set(1);
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FutureFanout)->Arg(1000)->Arg(10000);

void BM_SingleNodeProgram(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    auto cluster = hw::Cluster::ConfigA(&sim, static_cast<int>(state.range(0)));
    pathways::PathwaysRuntime runtime(cluster.get(), {});
    pathways::Client* client = runtime.CreateClient();
    auto slice = client->AllocateSlice(cluster->num_devices()).value();
    auto fn = xlasim::CompiledFunction::Synthetic(
        "op", cluster->num_devices(), Duration::Micros(100),
        net::CollectiveKind::kAllReduce, 4);
    auto r = client->RunFunction(fn, slice);
    sim.Run();
    benchmark::DoNotOptimize(r.ready());
  }
}
BENCHMARK(BM_SingleNodeProgram)->Arg(2)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
