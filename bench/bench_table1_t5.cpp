// Table 1: T5 training throughput (tokens/s) on JAX multi-controller vs
// Pathways. Paper: the two systems are IDENTICAL for every configuration —
// realistic computations are large enough to mask single-controller
// overheads.
//
//   T5-Base  270M   32 cores   618k
//   T5-Large 770M   32 cores   90.4k
//   T5-3B    3B    512 cores   282.8k
//   T5-11B   11B   512 cores   84.8k
#include <memory>

#include "bench_common.h"
#include "models/step_builder.h"
#include "pathways/pathways.h"

namespace {

struct RowResult {
  double jax_tokens_s;
  double pw_tokens_s;
};

RowResult MeasureT5(const pw::models::TransformerConfig& config, int cores) {
  using namespace pw;
  using namespace pw::pathways;

  // --- Pathways: SPMD step program through the full runtime ---
  double pw_tokens = 0;
  {
    sim::Simulator sim;
    const int hosts = cores / 8;
    auto cluster = hw::Cluster::ConfigB(&sim, hosts);
    PathwaysRuntime runtime(cluster.get(), PathwaysOptions{});
    Client* client = runtime.CreateClient();
    models::StepBuilder builder(config, cluster->params());
    // T5 runs hybrid data/model parallelism: layers shard 8-wide, data
    // parallel across the rest (so no whole-pod model-parallel penalty).
    const auto fn = builder.SpmdStepFunction(
        cores, cluster->island(0).collectives(), /*model_parallel=*/8);
    auto slice = client->AllocateSlice(cores).value();
    ProgramBuilder pb("t5_step");
    pb.Call(fn, slice, {});
    auto program = std::move(pb).Build();
    pw_tokens = models::MeasureTraining(client, &program,
                                        config.tokens_per_batch, 3)
                    .tokens_per_sec;
  }

  // --- JAX multi-controller: same kernels, per-host dispatch ---
  double jax_tokens = 0;
  {
    sim::Simulator sim;
    const int hosts = cores / 8;
    auto cluster = hw::Cluster::ConfigB(&sim, hosts);
    models::StepBuilder builder(config, cluster->params());
    const auto fn = builder.SpmdStepFunction(
        cores, cluster->island(0).collectives(), /*model_parallel=*/8);
    // Per step: python + per-device dispatch on every host, then the gang
    // kernel; two steps pipelined ahead, measured over 3 steps.
    const int kSteps = 4;
    std::vector<std::shared_ptr<hw::CollectiveGroup>> groups;
    for (int s = 0; s < kSteps; ++s) {
      groups.push_back(std::make_shared<hw::CollectiveGroup>(
          &sim, &cluster->island(0).collectives(),
          net::CollectiveKind::kAllReduce, cores, "step" + std::to_string(s)));
    }
    sim::SimFuture<sim::Unit> last;
    for (int h = 0; h < cluster->num_hosts(); ++h) {
      hw::Host& host = cluster->host(h);
      for (int s = 0; s < kSteps; ++s) {
        for (hw::Device* dev : host.devices()) {
          hw::KernelDesc kernel;
          kernel.label = "t5_step";
          kernel.pre_time = fn.pre_collective_time;
          kernel.post_time = fn.post_collective_time;
          kernel.collective = groups[static_cast<std::size_t>(s)];
          kernel.collective_bytes = fn.collective_bytes_per_shard;
          auto done = host.DispatchKernel(
              dev, std::move(kernel),
              cluster->params().host_kernel_dispatch_cost +
                  cluster->params().python_call_overhead /
                      static_cast<std::int64_t>(host.devices().size()));
          if (h == 0 && dev == host.devices().front()) last = done;
        }
      }
    }
    TimePoint first_done;
    // Measure from the end of step 0 to the end of the last step.
    sim.Run();
    // Reconstruct step boundary times from device 0 trace.
    const auto& spans = cluster->trace().spans();
    std::vector<TimePoint> ends;
    for (const auto& sp : spans) {
      if (sp.resource == "dev0") ends.push_back(sp.end);
    }
    const Duration step_time =
        (ends.back() - ends.front()) / static_cast<std::int64_t>(ends.size() - 1);
    jax_tokens = static_cast<double>(config.tokens_per_batch) /
                 step_time.ToSeconds();
  }
  return {jax_tokens, pw_tokens};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "Table 1: T5 training throughput (tokens/s), JAX vs Pathways",
      "identical throughput on both systems for every model size");

  struct Row {
    models::TransformerConfig config;
    int cores;
    double paper_tokens_s;
  };
  std::vector<Row> rows = {
      {models::TransformerConfig::T5Base(), 32, 618e3},
      {models::TransformerConfig::T5Large(), 32, 90.4e3},
      {models::TransformerConfig::T5_3B(), 512, 282.8e3},
      {models::TransformerConfig::T5_11B(), 512, 84.8e3},
  };
  if (args.quick) rows.resize(2);  // skip the 512-core sweeps
  bench::Reporter report("table1_t5", args);
  std::printf("%-10s %8s %8s %12s %12s %12s %8s\n", "model", "params",
              "cores", "paper", "JAX(sim)", "PW(sim)", "PW/JAX");
  for (const Row& row : rows) {
    const RowResult r = MeasureT5(row.config, row.cores);
    std::printf("%-10s %7.1fB %8d %11.1fk %11.1fk %11.1fk %8.3f\n",
                row.config.name.c_str(),
                static_cast<double>(row.config.TotalParams()) / 1e9, row.cores,
                row.paper_tokens_s / 1e3, r.jax_tokens_s / 1e3,
                r.pw_tokens_s / 1e3, r.pw_tokens_s / r.jax_tokens_s);
    report.AddRow({{"model", row.config.name},
                   {"cores", static_cast<std::int64_t>(row.cores)}},
                  {{"paper_tokens_per_sec", row.paper_tokens_s},
                   {"jax_tokens_per_sec", r.jax_tokens_s},
                   {"pw_tokens_per_sec", r.pw_tokens_s},
                   {"pw_over_jax", r.pw_tokens_s / r.jax_tokens_s}});
  }
  std::printf("\nshape check: PW/JAX ~= 1.000 on every row.\n");
  report.Write();
  return 0;
}
