// Table 2: 3B-parameter decoder-only Transformer — SPMD vs GPipe-style
// pipelining on Pathways.
//
//   Model-parallel (SPMD)        128 cores   125.7k tokens/s
//   Pipelining S=4,  M=16        128 cores   133.7k
//   Pipelining S=8,  M=32        128 cores   132.7k
//   Pipelining S=16, M=64        128 cores   131.4k
//   Pipelining S=16, M=64        512 cores   507.8k
//
// Shape: pipelining is competitive with (slightly better than) SPMD since
// per-stage collectives span fewer cores than whole-pod SPMD collectives;
// throughput scales near-linearly from 128 to 512 cores.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "models/step_builder.h"
#include "pathways/pathways.h"

namespace {

double MeasureSpmd(int cores) {
  using namespace pw;
  using namespace pw::pathways;
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigB(&sim, cores / 8);
  PathwaysRuntime runtime(cluster.get(), PathwaysOptions{});
  Client* client = runtime.CreateClient();
  models::TransformerConfig config = models::TransformerConfig::Decoder3B();
  config.tokens_per_batch = config.tokens_per_batch * cores / 128;
  models::StepBuilder builder(config, cluster->params());
  auto slice = client->AllocateSlice(cores).value();
  ProgramBuilder pb("spmd_step");
  pb.Call(builder.SpmdStepFunction(cores, cluster->island(0).collectives()),
          slice, {});
  auto program = std::move(pb).Build();
  return models::MeasureTraining(client, &program, config.tokens_per_batch, 3)
      .tokens_per_sec;
}

double MeasurePipeline(int cores, int stages, int micro_batches) {
  using namespace pw;
  using namespace pw::pathways;
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigB(&sim, cores / 8);
  PathwaysOptions options;
  // Single-tenant training: no admission control needed; the backward
  // cascade keeps early stages' gangs incomplete for a long time, so any
  // modest window would throttle dispatch of later micro-batches.
  options.max_inflight_gangs = 4 * stages * micro_batches;
  PathwaysRuntime runtime(cluster.get(), options);
  Client* client = runtime.CreateClient();
  models::TransformerConfig config = models::TransformerConfig::Decoder3B();
  config.tokens_per_batch = config.tokens_per_batch * cores / 128;
  models::StepBuilder builder(config, cluster->params());
  std::vector<VirtualSlice> slices;
  for (int s = 0; s < stages; ++s) {
    slices.push_back(client->AllocateSlice(cores / stages).value());
  }
  auto program = builder.BuildGPipeProgram(slices, micro_batches,
                                           cluster->island(0).collectives());
  return models::MeasureTraining(client, &program, config.tokens_per_batch, 3)
      .tokens_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "Table 2: 3B decoder LM, SPMD vs pipelining (tokens/s)",
      "pipeline >= SPMD at 128 cores; minimal loss from deeper pipelines; "
      "near-linear 128 -> 512 core scaling");

  bench::Reporter report("table2_pipeline", args);
  std::printf("%-28s %7s %12s %12s\n", "configuration", "cores", "paper",
              "measured");
  const double spmd = MeasureSpmd(128);
  std::printf("%-28s %7d %11.1fk %11.1fk\n", "Model-parallel (SPMD)", 128,
              125.7, spmd / 1e3);
  report.AddRow({{"config", std::string("spmd")},
                 {"cores", static_cast<std::int64_t>(128)}},
                {{"tokens_per_sec", spmd}, {"paper_tokens_per_sec", 125.7e3}});
  struct Row {
    int stages, micro;
    int cores;
    double paper;
  };
  std::vector<Row> rows = {
      {4, 16, 128, 133.7e3},
      {8, 32, 128, 132.7e3},
      {16, 64, 128, 131.4e3},
      {16, 64, 512, 507.8e3},
  };
  if (args.quick) rows = {{4, 16, 128, 133.7e3}, {16, 64, 128, 131.4e3}};
  double p16_128 = 0;
  for (const Row& r : rows) {
    const double measured = MeasurePipeline(r.cores, r.stages, r.micro);
    if (r.stages == 16 && r.cores == 128) p16_128 = measured;
    std::printf("Pipelining S=%-2d M=%-3d %7s %7d %11.1fk %11.1fk\n", r.stages,
                r.micro, "", r.cores, r.paper / 1e3, measured / 1e3);
    report.AddRow({{"config", "pipeline_s" + std::to_string(r.stages) + "_m" +
                                  std::to_string(r.micro)},
                   {"cores", static_cast<std::int64_t>(r.cores)}},
                  {{"tokens_per_sec", measured},
                   {"paper_tokens_per_sec", r.paper}});
  }
  std::printf("\nshape checks: pipeline/SPMD at 128 cores, 512/128 scaling "
              "(paper: 507.8/131.4 = 3.86x)\n");
  if (spmd > 0 && p16_128 > 0) {
    std::printf("measured pipeline(S=16)/SPMD = %.3f (paper 1.045)\n",
                p16_128 / spmd);
    report.Summary("pipeline16_over_spmd", p16_128 / spmd);
  }
  report.Write();
  return 0;
}
