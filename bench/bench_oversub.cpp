// Oversubscribed multi-tenant serving through the §4.6 memory hierarchy:
// T tenants each stage a resident "weights" buffer and serve a closed loop
// of requests against it while the per-device HBM is scaled *below* the sum
// of the tenants' working sets. Survival depends on the PR-5 machinery —
// scheduler-consistent reservation ordering plus the host-DRAM spill path
// (cold weights migrate out under stall pressure and are read through /
// restored when their tenant's next request arrives).
//
// Swept over hbm-capacity-scale x request-queue-depth via SweepRunner.
// Hard gates (non-zero exit):
//   * forward progress: every submitted request completes, the simulator
//     never goes quiescent with blocked entities, and the object store's
//     wedge check passes — zero deadlocks at every point;
//   * oversubscription is real: at the tightest capacity scale, >= 2x the
//     per-device HBM worth of logical buffer bytes is live via spilling
//     (metric `oversub_x` = peak logical bytes / HBM capacity);
//   * goodput under oversubscription stays above a floor of the
//     uncontended (scale 1.0) baseline at equal depth — paging costs
//     something, but the system must degrade, not collapse;
//   * the sweep table is byte-identical between 1 and N runner threads.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pathways/pathways.h"
#include "xlasim/compiled_function.h"

namespace {

using namespace pw;
using pathways::Client;
using pathways::ExecutionResult;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;
using pathways::ShardedBuffer;

constexpr int kTenants = 4;
constexpr Bytes kWeightsPerShard = MiB(6);
constexpr Bytes kOutputPerShard = MiB(2);
// Logical bytes per tenant per device (weights + one in-flight output).
constexpr Bytes kTenantBytesPerDevice = kWeightsPerShard + kOutputPerShard;
// Transient prep working set (input staging + in-flight outputs) the
// scale-1.0 baseline must absorb without stalling, so "1.0" really means
// un-oversubscribed: capacity = scale * (tenant bytes + this headroom).
constexpr Bytes kWorkingHeadroom = MiB(64);

sweep::Metrics MeasurePoint(const sweep::ParamPoint& p, bool quick) {
  const double scale = p.GetDouble("hbm_scale");
  const int depth = static_cast<int>(p.GetInt("depth"));
  const int requests_per_tenant = quick ? 6 : 24;

  sim::Simulator sim;
  hw::SystemParams params;
  params.hbm_capacity = static_cast<Bytes>(
      scale * static_cast<double>(kTenants * kTenantBytesPerDevice +
                                  kWorkingHeadroom));
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, /*islands=*/1,
                                               /*hosts_per_island=*/1,
                                               /*devices_per_host=*/2);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});

  // Per tenant: a client, a 2-device slice, staged weights, and a serving
  // program that consumes the weights (input staging = weights bytes).
  struct Tenant {
    Client* client = nullptr;
    pathways::VirtualSlice slice;
    ShardedBuffer weights;
    std::unique_ptr<PathwaysProgram> program;
    int submitted = 0;
    int completed = 0;
  };
  std::vector<Tenant> tenants(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    Tenant& tn = tenants[static_cast<std::size_t>(t)];
    tn.client = runtime.CreateClient();
    tn.slice = tn.client->AllocateSlice(2).value();
    xlasim::CompiledFunction fn;
    fn.name = "serve" + std::to_string(t);
    fn.num_shards = 2;
    fn.pre_collective_time = Duration::Micros(300);
    fn.input_bytes_per_shard = kWeightsPerShard;
    fn.output_bytes_per_shard = kOutputPerShard;
    ProgramBuilder pb("serve" + std::to_string(t));
    pathways::ValueRef arg = pb.Argument();
    pb.Result(pb.Call(fn, tn.slice, {arg}));
    tn.program = std::make_unique<PathwaysProgram>(std::move(pb).Build());
    // Staging the weights itself back-pressures (and spills) once the
    // scaled HBM cannot hold every tenant.
    tn.weights = tn.client->TransferToDevice(tn.slice, kWeightsPerShard);
  }
  sim.Run();  // land (or spill-shuffle) the weights

  // Closed loop per tenant: `depth` requests in flight, each completion
  // releases its outputs and issues the next.
  std::function<void(int)> issue = [&](int t) {
    Tenant& tn = tenants[static_cast<std::size_t>(t)];
    if (tn.submitted >= requests_per_tenant) return;
    ++tn.submitted;
    tn.client->Run(tn.program.get(), {tn.weights})
        .Then([&, t](const ExecutionResult& r) {
          Tenant& tn2 = tenants[static_cast<std::size_t>(t)];
          for (const auto& out : r.outputs) {
            runtime.object_store().Release(out.id);
          }
          if (!r.failed) ++tn2.completed;
          issue(t);
        });
  };
  for (int t = 0; t < kTenants; ++t) {
    for (int d = 0; d < depth; ++d) issue(t);
  }
  sim.Run();

  // Forward-progress gates: a wedge here PW_CHECKs the whole binary down
  // with the cycle named, and any shortfall shows up in `deadlocked`.
  runtime.object_store().CheckNoReservationWedge();
  int completed = 0;
  for (const Tenant& tn : tenants) completed += tn.completed;
  const bool all_done = completed == kTenants * requests_per_tenant;
  const bool deadlocked = sim.Deadlocked() || !all_done;

  pathways::ObjectStore& store = runtime.object_store();
  double oversub_x = 0;
  for (int d = 0; d < cluster->num_devices(); ++d) {
    const double peak = static_cast<double>(
        store.logical_peak_bytes(cluster->device(d).id()));
    oversub_x = std::max(
        oversub_x, peak / static_cast<double>(params.hbm_capacity));
  }

  sweep::Metrics m;
  m.emplace_back("completed", static_cast<double>(completed));
  m.emplace_back("deadlocked", deadlocked ? 1.0 : 0.0);
  m.emplace_back("goodput_per_s",
                 static_cast<double>(completed) / sim.now().ToSeconds());
  m.emplace_back("oversub_x", oversub_x);
  m.emplace_back("spills", static_cast<double>(store.spills_completed()));
  m.emplace_back("fills", static_cast<double>(store.fills_completed()));
  m.emplace_back("dram_reads", static_cast<double>(store.dram_reads()));
  m.emplace_back("spilled_mib",
                 static_cast<double>(store.spilled_bytes_total()) /
                     static_cast<double>(MiB(1)));
  m.emplace_back("dram_peak_mib",
                 static_cast<double>(cluster->host(0).dram().peak_used()) /
                     static_cast<double>(MiB(1)));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const pw::bench::Args args = pw::bench::Args::Parse(argc, argv);
  pw::bench::Header(
      "Oversubscribed serving: HBM back-pressure + host-DRAM spilling",
      "§4.6 back-pressure composes with a spill hierarchy: >= 2 tenants' "
      "working sets per device-HBM keep serving with zero deadlocks");

  pw::sweep::ParamGrid grid;
  grid.AxisDoubles("hbm_scale", args.quick
                                    ? std::vector<double>{1.0, 0.125}
                                    : std::vector<double>{1.0, 0.4, 0.125})
      .AxisInts("depth", args.quick ? std::vector<std::int64_t>{2}
                                    : std::vector<std::int64_t>{1, 3});

  auto point_fn = [&args](const pw::sweep::ParamPoint& p) {
    return MeasurePoint(p, args.quick);
  };
  pw::sweep::SweepRunner runner;  // hardware_concurrency threads
  pw::sweep::ResultTable table = runner.Run(grid, point_fn);

  // Determinism gate: the identical sweep on one thread must serialize to
  // the identical table.
  pw::sweep::SweepRunner serial(pw::sweep::SweepRunner::Options{.threads = 1});
  pw::sweep::ResultTable table1 = serial.Run(grid, point_fn);
  std::ostringstream csv_mt, csv_1t;
  table.WriteCsv(csv_mt);
  table1.WriteCsv(csv_1t);
  const bool deterministic = csv_mt.str() == csv_1t.str();

  // Per-depth goodput baselines at scale 1.0 for the degradation gate.
  const auto points = grid.Points();
  std::map<std::int64_t, double> baseline;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    if (points[i].GetDouble("hbm_scale") == 1.0) {
      baseline[points[i].GetInt("depth")] =
          pw::bench::MetricOf(table.rows()[i], "goodput_per_s");
    }
  }

  std::printf("%9s %6s %10s %9s %9s %7s %7s %10s %10s %9s\n", "hbm_scale",
              "depth", "goodput/s", "ratio", "oversub_x", "spills", "fills",
              "dram_reads", "spilled_MiB", "deadlock");
  bool any_deadlock = false;
  double min_ratio = 1.0;
  double max_oversub = 0.0;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    const auto& row = table.rows()[i];
    const double scale = points[i].GetDouble("hbm_scale");
    const std::int64_t depth = points[i].GetInt("depth");
    const double goodput = pw::bench::MetricOf(row, "goodput_per_s");
    const double base = baseline[depth];
    const double ratio = base > 0 ? goodput / base : 0.0;
    const bool deadlocked = pw::bench::MetricOf(row, "deadlocked") > 0.5;
    any_deadlock |= deadlocked;
    if (scale < 1.0) {
      min_ratio = std::min(min_ratio, ratio);
      max_oversub = std::max(max_oversub, pw::bench::MetricOf(row, "oversub_x"));
    }
    std::printf("%9.2f %6lld %10.0f %8.2fx %8.2fx %7.0f %7.0f %10.0f %10.1f %9s\n",
                scale, static_cast<long long>(depth), goodput, ratio,
                pw::bench::MetricOf(row, "oversub_x"), pw::bench::MetricOf(row, "spills"),
                pw::bench::MetricOf(row, "fills"), pw::bench::MetricOf(row, "dram_reads"),
                pw::bench::MetricOf(row, "spilled_mib"), deadlocked ? "YES" : "no");
  }
  std::printf("\ndeterminism across SweepRunner thread counts: %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  pw::bench::Reporter report("oversub", args);
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    report.AddRow(table.rows()[i].params, table.rows()[i].metrics);
  }
  report.Summary("deadlocks", any_deadlock ? 1.0 : 0.0);
  report.Summary("min_goodput_ratio_oversub", min_ratio);
  report.Summary("max_oversub_x", max_oversub);
  report.Summary("deterministic", deterministic ? 1.0 : 0.0);
  report.Write();

  bool fail = false;
  if (any_deadlock) {
    std::fprintf(stderr, "FAIL: deadlock (or incomplete point) detected\n");
    fail = true;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
    fail = true;
  }
  if (max_oversub < 2.0) {
    std::fprintf(stderr,
                 "FAIL: oversubscription factor %.2fx < 2x — the sweep never "
                 "exercised real oversubscription\n",
                 max_oversub);
    fail = true;
  }
  const double ratio_floor = 0.15;
  if (min_ratio < ratio_floor) {
    std::fprintf(stderr,
                 "FAIL: oversubscribed goodput collapsed to %.2fx of the "
                 "uncontended baseline (floor %.2fx)\n",
                 min_ratio, ratio_floor);
    fail = true;
  }
  if (!fail) {
    std::printf("gates: zero deadlocks, oversub %.2fx >= 2x, goodput ratio "
                ">= %.2fx, deterministic\n",
                max_oversub, ratio_floor);
  }
  return fail ? 1 : 0;
}
