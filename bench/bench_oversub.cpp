// Oversubscribed multi-tenant serving through the §4.6 memory hierarchy:
// T tenants each stage a resident "weights" buffer and serve a closed loop
// of requests while per-device HBM is scaled *below* the sum of the
// tenants' working sets. Survival depends on the PR-5 machinery —
// scheduler-consistent reservation ordering plus the host-DRAM spill path.
//
// Thin wrapper: the measurement harness lives in the "oversub" family
// (src/scenario/family_oversub.cpp) and the grid/workload knobs in
// scenarios/oversub.json (override with --scenario <file>). This main only
// prints the table and enforces the hard gates:
//   * zero deadlocks at every point (forward progress + wedge check);
//   * oversubscription is real: >= 2x HBM worth of logical bytes live;
//   * goodput under oversubscription stays above a floor of the
//     uncontended (scale 1.0) baseline at equal depth;
//   * the sweep table is byte-identical between 1 and N runner threads.
#include <cstdio>
#include <map>

#include "bench_common.h"

int main(int argc, char** argv) {
  const pw::bench::Args args =
      pw::bench::Args::Parse(argc, argv, pw::bench::kScenarioFlag);
  pw::bench::Header(
      "Oversubscribed serving: HBM back-pressure + host-DRAM spilling",
      "§4.6 back-pressure composes with a spill hierarchy: >= 2 tenants' "
      "working sets per device-HBM keep serving with zero deadlocks");

  const pw::scenario::Scenario s =
      pw::bench::LoadBenchScenario(args, "oversub", "oversub");
  const pw::scenario::RunResult result = pw::bench::RunBenchScenario(s, args);

  // Per-depth goodput baselines at scale 1.0, for the printed ratio column
  // (the gate values themselves come from the family's summary).
  std::map<std::int64_t, double> baseline;
  for (std::size_t i = 0; i < result.table.rows().size(); ++i) {
    if (result.points[i].GetDouble("hbm_scale") == 1.0) {
      baseline[result.points[i].GetInt("depth")] =
          pw::bench::MetricOf(result.table.rows()[i], "goodput_per_s");
    }
  }

  std::printf("%9s %6s %10s %9s %9s %7s %7s %10s %10s %9s\n", "hbm_scale",
              "depth", "goodput/s", "ratio", "oversub_x", "spills", "fills",
              "dram_reads", "spilled_MiB", "deadlock");
  for (std::size_t i = 0; i < result.table.rows().size(); ++i) {
    const auto& row = result.table.rows()[i];
    const double scale = result.points[i].GetDouble("hbm_scale");
    const std::int64_t depth = result.points[i].GetInt("depth");
    const double goodput = pw::bench::MetricOf(row, "goodput_per_s");
    const double base = baseline[depth];
    const double ratio = base > 0 ? goodput / base : 0.0;
    const bool deadlocked = pw::bench::MetricOf(row, "deadlocked") > 0.5;
    std::printf(
        "%9.2f %6lld %10.0f %8.2fx %8.2fx %7.0f %7.0f %10.0f %10.1f %9s\n",
        scale, static_cast<long long>(depth), goodput, ratio,
        pw::bench::MetricOf(row, "oversub_x"),
        pw::bench::MetricOf(row, "spills"),
        pw::bench::MetricOf(row, "fills"),
        pw::bench::MetricOf(row, "dram_reads"),
        pw::bench::MetricOf(row, "spilled_mib"), deadlocked ? "YES" : "no");
  }
  const bool deterministic =
      pw::bench::SummaryOf(result.summary, "deterministic") > 0.5;
  std::printf("\ndeterminism across SweepRunner thread counts: %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  const bool any_deadlock =
      pw::bench::SummaryOf(result.summary, "deadlocks") > 0.5;
  const double min_ratio =
      pw::bench::SummaryOf(result.summary, "min_goodput_ratio_oversub");
  const double max_oversub =
      pw::bench::SummaryOf(result.summary, "max_oversub_x");

  bool fail = false;
  if (any_deadlock) {
    std::fprintf(stderr, "FAIL: deadlock (or incomplete point) detected\n");
    fail = true;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
    fail = true;
  }
  if (max_oversub < 2.0) {
    std::fprintf(stderr,
                 "FAIL: oversubscription factor %.2fx < 2x — the sweep never "
                 "exercised real oversubscription\n",
                 max_oversub);
    fail = true;
  }
  const double ratio_floor = 0.15;
  if (min_ratio < ratio_floor) {
    std::fprintf(stderr,
                 "FAIL: oversubscribed goodput collapsed to %.2fx of the "
                 "uncontended baseline (floor %.2fx)\n",
                 min_ratio, ratio_floor);
    fail = true;
  }
  if (!fail) {
    std::printf("gates: zero deadlocks, oversub %.2fx >= 2x, goodput ratio "
                ">= %.2fx, deterministic\n",
                max_oversub, ratio_floor);
  }
  return fail ? 1 : 0;
}
