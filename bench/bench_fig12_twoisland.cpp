// §5.3 + Figure 12: large decoder-only LMs trained data-parallel over two
// islands of accelerators connected by DCN.
//
// Paper: Pathways achieves ~97% of the throughput of a single island with
// twice as many devices; the gradient reduction (457 GB for 64B, 1030 GB
// for 136B) is decomposed into intra-island reduce-scatter + cross-island
// DCN exchange + intra-island all-gather, overlapped with the backward
// pass.
//
// Thin wrapper: the measurement harness lives in the "fig12_twoisland"
// family (src/scenario/family_fig12.cpp) and the model grid in
// scenarios/fig12_twoisland.json (override with --scenario <file>). Every
// point also re-runs the two-island arm on a non-blocking flow-level Clos
// and this main gates |flow/analytic - 1| <= 5% — pinning the "uncontended
// flow == analytic" claim at full system scale (contention itself is
// bench_network's job).
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args =
      bench::Args::Parse(argc, argv, bench::kScenarioFlag);
  bench::Header(
      "Figure 12 / §5.3: 64B and 136B LMs data-parallel over two islands",
      "two islands over DCN reach ~97% of one island with 2x devices");

  const scenario::Scenario s =
      bench::LoadBenchScenario(args, "fig12_twoisland", "fig12_twoisland");
  const scenario::RunResult result = bench::RunBenchScenario(s, args);

  const std::map<std::string, double> paper_reduction_gb = {
      {"decoder64b", 457.0}, {"decoder136b", 1030.0}};
  bool flow_ok = true;
  for (std::size_t i = 0; i < result.table.rows().size(); ++i) {
    const auto& row = result.table.rows()[i];
    const std::string model = result.points[i].GetString("model");
    const double two = bench::MetricOf(row, "two_island_tokens_per_sec");
    const double one = bench::MetricOf(row, "one_island_tokens_per_sec");
    std::printf("%-11s two islands: %9.1fk tok/s | one island, 2x devices: "
                "%9.1fk tok/s | efficiency %.1f%% (paper ~97%%)\n",
                model.c_str(), two / 1e3, one / 1e3,
                100.0 * bench::MetricOf(row, "efficiency"));
    const auto paper = paper_reduction_gb.find(model);
    std::printf("            cross-island traffic: %.0f GB/step "
                "(paper global reduction: %.0f GB)\n",
                bench::MetricOf(row, "dcn_gb_per_step"),
                paper != paper_reduction_gb.end() ? paper->second : 0.0);
    const double ratio = bench::MetricOf(row, "flow_vs_analytic_ratio");
    const bool ok = std::abs(ratio - 1.0) <= 0.05;
    std::printf("            flow-level DCN (non-blocking Clos): %9.1fk "
                "tok/s, %.2f%% of analytic [%s]\n",
                bench::MetricOf(row, "flow_tokens_per_sec") / 1e3,
                100.0 * ratio, ok ? "ok" : "FAIL");
    if (!ok) {
      std::fprintf(stderr,
                   "FAIL: %s flow-level two-island throughput off analytic "
                   "by %.2f%% (tolerance 5%%)\n",
                   model.c_str(), 100.0 * std::abs(ratio - 1.0));
      flow_ok = false;
    }
  }
  return flow_ok ? 0 : 1;
}
