// §5.3 + Figure 12: large decoder-only LMs trained data-parallel over two
// islands of accelerators connected by DCN.
//
// Paper: Pathways achieves ~97% of the throughput of a single island with
// twice as many devices; the gradient reduction (457 GB for 64B, 1030 GB
// for 136B) is decomposed into intra-island reduce-scatter + cross-island
// DCN exchange + intra-island all-gather, overlapped with the backward
// pass.
#include <cmath>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "models/step_builder.h"
#include "pathways/pathways.h"

namespace {

struct Result {
  double tokens_per_sec;
  double dcn_gb_per_step;
};

Result MeasureDataParallel(const pw::models::TransformerConfig& config,
                           int islands, int cores_per_island,
                           const pw::hw::SystemParams& params) {
  using namespace pw;
  using namespace pw::pathways;
  sim::Simulator sim;
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, islands,
                                               cores_per_island / 8, 8);
  PathwaysOptions options;
  options.max_inflight_gangs = 64;
  PathwaysRuntime runtime(cluster.get(), options);
  Client* client = runtime.CreateClient();
  models::StepBuilder builder(config, cluster->params());

  std::unique_ptr<PathwaysProgram> program;
  if (islands == 1) {
    ProgramBuilder pb("spmd");
    auto slice = client->AllocateSlice(cores_per_island).value();
    pb.Call(builder.SpmdStepFunction(cores_per_island,
                                     cluster->island(0).collectives(),
                                     /*model_parallel=*/32),
            slice, {});
    program = std::make_unique<PathwaysProgram>(std::move(pb).Build());
  } else {
    std::vector<VirtualSlice> slices;
    for (int i = 0; i < islands; ++i) {
      slices.push_back(
          client->AllocateSlice(cores_per_island, hw::IslandId(i)).value());
    }
    program = std::make_unique<PathwaysProgram>(builder.BuildMultiIslandStep(
        slices, /*chunks=*/8, cluster->island(0).collectives()));
  }
  const auto m = models::MeasureTraining(client, program.get(),
                                         config.tokens_per_batch, 3);
  Result r;
  r.tokens_per_sec = m.tokens_per_sec;
  r.dcn_gb_per_step = static_cast<double>(cluster->dcn().bytes_sent()) /
                      (3.0 * 1e9);
  return r;
}

// Returns the two-island result so main can validate it against the
// flow-level fabric.
Result RunModel(const pw::models::TransformerConfig& config,
                int cores_per_island, double paper_reduction_gb,
                pw::bench::Reporter* report) {
  const pw::hw::SystemParams params = pw::hw::SystemParams::TpuDefault();
  const Result two = MeasureDataParallel(config, 2, cores_per_island, params);
  const Result one =
      MeasureDataParallel(config, 1, 2 * cores_per_island, params);
  const double efficiency = two.tokens_per_sec / one.tokens_per_sec;
  std::printf("%-9s 2x%-5d cores: %9.1fk tok/s | 1x%-5d cores: %9.1fk tok/s"
              " | efficiency %.1f%% (paper ~97%%)\n",
              config.name.c_str(), cores_per_island,
              two.tokens_per_sec / 1e3, 2 * cores_per_island,
              one.tokens_per_sec / 1e3, 100.0 * efficiency);
  std::printf("          cross-island traffic: %.0f GB/step "
              "(paper global reduction: %.0f GB)\n",
              two.dcn_gb_per_step, paper_reduction_gb);
  report->AddRow(
      {{"model", config.name},
       {"cores_per_island", static_cast<std::int64_t>(cores_per_island)}},
      {{"two_island_tokens_per_sec", two.tokens_per_sec},
       {"one_island_tokens_per_sec", one.tokens_per_sec},
       {"efficiency", efficiency},
       {"dcn_gb_per_step", two.dcn_gb_per_step}});
  report->Summary("efficiency_" + config.name, efficiency);
  return two;
}

// Re-runs the two-island point on the flow-level Clos DCN and gates the
// result against the abstract (analytic) fabric. A single spine at R=1 is
// a non-blocking fat pipe, so the pairwise cross-island gradient exchange
// is uncontended and the flow engine must land on the same throughput —
// this pins the tentpole's "uncontended flow == analytic" claim at full
// system scale, not just in unit tests (contention is bench_network's job).
bool ValidateFlowFabric(const pw::models::TransformerConfig& config,
                        int cores_per_island, const Result& analytic,
                        pw::bench::Reporter* report) {
  using namespace pw;
  hw::SystemParams params = hw::SystemParams::TpuDefault();
  params.dcn.clos.enabled = true;
  params.dcn.clos.hosts_per_leaf = 8;
  params.dcn.clos.num_spines = 1;
  params.dcn.clos.oversubscription = 1.0;
  const Result flow = MeasureDataParallel(config, 2, cores_per_island, params);
  const double ratio = flow.tokens_per_sec / analytic.tokens_per_sec;
  const bool ok = std::abs(ratio - 1.0) <= 0.05;
  std::printf("flow-level DCN (non-blocking Clos): %9.1fk tok/s, "
              "%.2f%% of analytic [%s]\n",
              flow.tokens_per_sec / 1e3, 100.0 * ratio, ok ? "ok" : "FAIL");
  report->Summary("flow_vs_analytic_ratio", ratio);
  report->Summary("flow_gate_ok", ok ? 1.0 : 0.0);
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: flow-level two-island throughput off analytic by "
                 "%.2f%% (tolerance 5%%)\n",
                 100.0 * std::abs(ratio - 1.0));
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "Figure 12 / §5.3: 64B and 136B LMs data-parallel over two islands",
      "two islands over DCN reach ~97% of one island with 2x devices");
  bench::Reporter report("fig12_twoisland", args);
  const Result two64 =
      RunModel(models::TransformerConfig::Decoder64B(), 512, 457, &report);
  const bool flow_ok = ValidateFlowFabric(models::TransformerConfig::Decoder64B(),
                                          512, two64, &report);
  if (!args.quick) {
    RunModel(models::TransformerConfig::Decoder136B(), 1024, 1030, &report);
  }
  report.Write();
  return flow_ok ? 0 : 1;
}
