// Figure 5: dispatch overhead of Pathways vs TF, JAX, and Ray.
//
// Workload: repeated gang-scheduled computations, each a scalar AllReduce
// followed by a scalar add, in OpByOp / Chained(128) / Fused(128) modes.
// Paper shape to reproduce:
//   * JAX-F ~ PW-F (parity to ~1000 cores), on top;
//   * PW-C above JAX-O up to ~256 cores;
//   * single-controller TF and out-of-the-box Ray an order of magnitude
//     (or more) below, with TF-O worst at scale.
//
// The measurement fans out through sweep::SweepRunner: every (system, mode,
// hosts) point builds its own single-threaded Simulator, so points run
// concurrently on multi-core machines while each stays deterministic.
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

struct Row {
  const char* label;
  const char* system;
  pw::baselines::CallMode mode;
};

// Ray's GPU-VM fleet tops out far below TPU-pod host counts: measurements
// above the ceiling run at the ceiling (single source of truth for both
// the sweep and the BENCH json labeling).
constexpr std::int64_t kRayHostCeiling = 64;
std::int64_t MeasuredHosts(const char* system, std::int64_t hosts) {
  return (std::string(system) == "Ray" && hosts > kRayHostCeiling)
             ? kRayHostCeiling
             : hosts;
}

constexpr Row kRows[] = {
    {"JAX-F", "JAX", pw::baselines::CallMode::kFused},
    {"PW-F", "PW", pw::baselines::CallMode::kFused},
    {"PW-C", "PW", pw::baselines::CallMode::kChained},
    {"JAX-O", "JAX", pw::baselines::CallMode::kOpByOp},
    {"Ray-F", "Ray", pw::baselines::CallMode::kFused},
    {"TF-C", "TF", pw::baselines::CallMode::kChained},
    {"PW-O", "PW", pw::baselines::CallMode::kOpByOp},
    {"Ray-C", "Ray", pw::baselines::CallMode::kChained},
    {"Ray-O", "Ray", pw::baselines::CallMode::kOpByOp},
    {"TF-O", "TF", pw::baselines::CallMode::kOpByOp},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  using namespace pw::baselines;
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "Figure 5: computations/sec vs number of hosts (config A, 4 TPU/host)",
      "JAX-F ~= PW-F > PW-C > JAX-O > Ray-F > TF-C > PW-O > Ray-C > Ray-O "
      "> TF-O");

  const std::vector<std::int64_t> tpu_hosts =
      args.quick ? std::vector<std::int64_t>{2, 8}
                 : std::vector<std::int64_t>{2, 8, 32, 128};
  // Fused modes only (paper runs JAX/PW out to 2048 cores).
  const std::vector<std::int64_t> big_hosts =
      args.quick ? std::vector<std::int64_t>{} : std::vector<std::int64_t>{256, 512};

  MicrobenchSpec base_spec;
  base_spec.unit_compute = Duration::Micros(1);
  base_spec.chain_length = 128;
  base_spec.warmup = Duration::Millis(50);
  base_spec.measure = args.quick ? Duration::Millis(100) : Duration::Millis(400);

  std::vector<std::int64_t> all_hosts = tpu_hosts;
  all_hosts.insert(all_hosts.end(), big_hosts.begin(), big_hosts.end());

  sweep::ParamGrid grid;
  grid.AxisInts("row", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
      .AxisInts("hosts", all_hosts);

  sweep::SweepRunner runner;  // threads = hardware concurrency
  const bool quick = args.quick;
  sweep::ResultTable table = runner.Run(
      grid, [&base_spec, &tpu_hosts, quick](
                const sweep::ParamPoint& p) -> sweep::Metrics {
        const Row& row = kRows[p.GetInt("row")];
        std::int64_t hosts = p.GetInt("hosts");
        const bool big = hosts > tpu_hosts.back();
        // Only fused JAX/PW scale to the big host counts.
        if (big && !(row.mode == CallMode::kFused &&
                     (std::string(row.system) == "JAX" ||
                      std::string(row.system) == "PW"))) {
          return {};
        }
        hosts = MeasuredHosts(row.system, hosts);
        MicrobenchSpec s = base_spec;
        s.mode = row.mode;
        // Chained programs are long (a 128-node program at 512 shards
        // carries ~1.1 s of per-shard descriptor work); widen the window so
        // several whole programs land inside it.
        if (row.mode == CallMode::kChained) {
          s.max_inflight_calls = 2;
          s.warmup = quick ? Duration::Millis(300) : Duration::Seconds(1.5);
          s.measure = quick ? Duration::Seconds(1) : Duration::Seconds(5);
        }
        return {{"computations_per_sec",
                 bench::MeasureSystem(row.system, static_cast<int>(hosts), s)}};
      });

  // Render the paper's table shape from the sweep results.
  auto lookup = [&table](int row, std::int64_t hosts) -> double {
    for (const auto& r : table.rows()) {
      if (std::get<std::int64_t>(r.params[0].second) == row &&
          std::get<std::int64_t>(r.params[1].second) == hosts) {
        return r.metrics.empty() ? -1 : r.metrics[0].second;
      }
    }
    return -1;
  };

  bench::Reporter report("fig5_dispatch", args);
  std::printf("%-7s", "system");
  for (std::int64_t h : all_hosts) {
    std::printf("%11s", ("h=" + std::to_string(h)).c_str());
  }
  std::printf("   (computations/sec)\n");
  for (int ri = 0; ri < 10; ++ri) {
    std::printf("%-7s", kRows[ri].label);
    for (std::int64_t h : all_hosts) {
      const double v = lookup(ri, h);
      if (v < 0) {
        std::printf("%11s", "-");
      } else {
        std::printf("%11.0f", v);
        // Record the actually measured size (Ray clamps above its fleet
        // ceiling) so BENCH json consumers don't trend a clamped number as
        // a larger-fleet data point.
        const std::int64_t measured_hosts = MeasuredHosts(kRows[ri].system, h);
        report.AddRow({{"system", std::string(kRows[ri].label)},
                       {"hosts", h},
                       {"measured_hosts", measured_hosts}},
                      {{"computations_per_sec", v}});
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape checks: PW-F/JAX-F parity, PW-C > JAX-O at <=64 hosts, "
      "TF-O slowest.\n");
  const double pw_f = lookup(1, tpu_hosts.back());
  const double jax_f = lookup(0, tpu_hosts.back());
  if (jax_f > 0) report.Summary("pwf_jaxf_parity", pw_f / jax_f);
  report.Write();
  return 0;
}
