// Figure 5: dispatch overhead of Pathways vs TF, JAX, and Ray.
//
// Workload: repeated gang-scheduled computations, each a scalar AllReduce
// followed by a scalar add, in OpByOp / Chained(128) / Fused(128) modes.
// Paper shape to reproduce:
//   * JAX-F ~ PW-F (parity to ~1000 cores), on top;
//   * PW-C above JAX-O up to ~256 cores;
//   * single-controller TF and out-of-the-box Ray an order of magnitude
//     (or more) below, with TF-O worst at scale.
#include <vector>

#include "bench_common.h"

int main() {
  using namespace pw;
  using namespace pw::baselines;
  bench::Header(
      "Figure 5: computations/sec vs number of hosts (config A, 4 TPU/host)",
      "JAX-F ~= PW-F > PW-C > JAX-O > Ray-F > TF-C > PW-O > Ray-C > Ray-O "
      "> TF-O");

  const std::vector<int> tpu_hosts = {2, 8, 32, 128};
  const std::vector<int> big_hosts = {256, 512};  // fused modes only

  MicrobenchSpec spec;
  spec.unit_compute = Duration::Micros(1);
  spec.chain_length = 128;
  spec.warmup = Duration::Millis(50);
  spec.measure = Duration::Millis(400);

  struct Row {
    const char* label;
    const char* system;
    CallMode mode;
  };
  const std::vector<Row> rows = {
      {"JAX-F", "JAX", CallMode::kFused},   {"PW-F", "PW", CallMode::kFused},
      {"PW-C", "PW", CallMode::kChained},   {"JAX-O", "JAX", CallMode::kOpByOp},
      {"Ray-F", "Ray", CallMode::kFused},   {"TF-C", "TF", CallMode::kChained},
      {"PW-O", "PW", CallMode::kOpByOp},    {"Ray-C", "Ray", CallMode::kChained},
      {"Ray-O", "Ray", CallMode::kOpByOp},  {"TF-O", "TF", CallMode::kOpByOp},
  };

  std::printf("%-7s", "system");
  for (int h : tpu_hosts) std::printf("%11s", ("h=" + std::to_string(h)).c_str());
  for (int h : big_hosts) std::printf("%11s", ("h=" + std::to_string(h)).c_str());
  std::printf("   (computations/sec)\n");

  for (const Row& row : rows) {
    std::printf("%-7s", row.label);
    MicrobenchSpec s = spec;
    s.mode = row.mode;
    // Chained programs are long (a 128-node program at 512 shards carries
    // ~1.1 s of per-shard descriptor work); widen the window so several
    // whole programs land inside it.
    if (row.mode == CallMode::kChained) {
      s.max_inflight_calls = 2;
      s.warmup = Duration::Seconds(1.5);
      s.measure = Duration::Seconds(5);
    }
    for (int h : tpu_hosts) {
      // Ray's GPU-VM fleet tops out far below TPU-pod host counts.
      const int hosts = (std::string(row.system) == "Ray" && h > 64) ? 64 : h;
      std::printf("%11.0f", bench::MeasureSystem(row.system, hosts, s));
    }
    if (row.mode == CallMode::kFused &&
        (std::string(row.system) == "JAX" || std::string(row.system) == "PW")) {
      for (int h : big_hosts) {
        std::printf("%11.0f", bench::MeasureSystem(row.system, h, s));
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape checks: PW-F/JAX-F parity, PW-C > JAX-O at <=64 hosts, "
      "TF-O slowest.\n");
  return 0;
}
