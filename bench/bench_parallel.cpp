// Partitioned-engine scaling bench: the cross-island ring workload of the
// "parallel" family (src/scenario/family_parallel.cpp, grid in
// scenarios/parallel.json) run twice per point — one sim-thread vs N — with
// the canonically merged event traces compared byte-for-byte.
//
// Gates:
//   1. Determinism (always): every point's parallel trace, event count and
//      delivered-message count must equal the serial run's exactly. This is
//      the docs/PARALLEL.md contract and it holds on any host.
//   2. Speedup (multi-core hosts only): parallel events/sec >= 2x serial at
//      the largest island count. Wall-clock scaling is meaningless on a
//      single-core CI runner, so this gate arms only when
//      hardware_concurrency() >= 4; the JSON still records the measured
//      speedup either way so trend lines can track it.
#include <cstdio>
#include <thread>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args =
      bench::Args::Parse(argc, argv, bench::kScenarioFlag);
  bench::Header(
      "Partitioned event engine: islands as conservatively-synchronized LPs",
      "per-island logical processes synchronized by DCN-latency lookahead "
      "scale events/sec with cores while replaying bit-identical traces");

  const scenario::Scenario s =
      bench::LoadBenchScenario(args, "parallel", "parallel");
  const scenario::RunResult result = bench::RunBenchScenario(s, args);

  std::printf("%8s %12s | %16s %16s %8s | %6s\n", "islands", "sim_threads",
              "serial_ev/s", "parallel_ev/s", "speedup", "match");
  for (std::size_t i = 0; i < result.table.rows().size(); ++i) {
    const auto& row = result.table.rows()[i];
    std::printf("%8lld %12.0f | %16.0f %16.0f %7.2fx | %6s\n",
                static_cast<long long>(result.points[i].GetInt("islands")),
                bench::MetricOf(row, "sim_threads"),
                bench::MetricOf(row, "serial_events_per_sec"),
                bench::MetricOf(row, "parallel_events_per_sec"),
                bench::MetricOf(row, "speedup"),
                bench::MetricOf(row, "trace_match") > 0.5 ? "yes" : "NO");
  }

  bool gates_ok = true;
  const bool all_match =
      bench::SummaryOf(result.summary, "all_traces_match") > 0.5;
  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: parallel trace diverged from the serial run\n");
    gates_ok = false;
  }
  const double max_speedup = bench::SummaryOf(result.summary, "max_speedup");
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 4) {
    if (max_speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: max speedup %.2fx < 2x on a %u-core host\n",
                   max_speedup, cores);
      gates_ok = false;
    }
  } else {
    std::printf("(speedup gate disarmed: only %u hardware threads)\n", cores);
  }
  std::printf("\nmax speedup: %.2fx | traces: %s\n", max_speedup,
              all_match ? "byte-identical" : "DIVERGED");
  if (!gates_ok) {
    std::fprintf(stderr, "bench_parallel: GATES FAILED\n");
    return 1;
  }
  return 0;
}
