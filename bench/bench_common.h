// Shared helpers for the benchmark binaries: each bench regenerates one
// table or figure from the paper's evaluation (§5) and prints the measured
// series next to the paper's reported values where available.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "baselines/jax_mc.h"
#include "baselines/microbench.h"
#include "baselines/pathways_driver.h"
#include "baselines/raylike.h"
#include "baselines/tf1.h"
#include "hw/cluster.h"
#include "sim/simulator.h"

namespace pw::bench {

inline void Header(const std::string& title, const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

// Measures one (system, mode) point on a fresh config-A cluster.
inline double MeasureSystem(const std::string& system, int hosts,
                            const baselines::MicrobenchSpec& spec) {
  using namespace baselines;
  sim::Simulator sim;
  if (system == "JAX") {
    auto cluster = hw::Cluster::ConfigA(&sim, hosts);
    JaxMultiController jax(cluster.get());
    return jax.Measure(spec).computations_per_sec;
  }
  if (system == "PW") {
    auto cluster = hw::Cluster::ConfigA(&sim, hosts);
    PathwaysDriver pw(cluster.get());
    return pw.Measure(spec).computations_per_sec;
  }
  if (system == "TF") {
    auto cluster = hw::Cluster::ConfigA(&sim, hosts);
    Tf1SingleController tf(cluster.get());
    return tf.Measure(spec).computations_per_sec;
  }
  if (system == "Ray") {
    auto cluster = hw::Cluster::GpuVm(&sim, hosts);
    RayLike ray(cluster.get());
    return ray.Measure(spec).computations_per_sec;
  }
  std::fprintf(stderr, "unknown system %s\n", system.c_str());
  return 0;
}

}  // namespace pw::bench
