// Shared helpers for the benchmark binaries: each bench regenerates one
// table or figure from the paper's evaluation (§5), prints the measured
// series next to the paper's reported values where available, and emits a
// machine-readable BENCH_<name>.json (see docs/BENCHMARKS.md for the
// schema) so CI can track the perf trajectory across PRs.
#pragma once

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/jax_mc.h"
#include "baselines/microbench.h"
#include "baselines/pathways_driver.h"
#include "baselines/raylike.h"
#include "baselines/tf1.h"
#include "hw/cluster.h"
#include "sim/simulator.h"
#include "sweep/param_grid.h"
#include "sweep/result_table.h"
#include "sweep/sweep_runner.h"

namespace pw::bench {

// Command line shared by every bench binary:
//   --quick       reduced-size run (CI smoke jobs; same code path, smaller
//                 grids)
//   --out <dir>   directory for BENCH_*.json (default $PWSIM_BENCH_DIR or .)
//   --disagg      bench_serving only: disaggregated prefill/decode mode
//                 (ratio x KV-transfer-bandwidth sweep, docs/SERVING.md)
struct Args {
  bool quick = false;
  bool disagg = false;
  std::string out_dir;

  static Args Parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(argv[i], "--disagg") == 0) {
        args.disagg = true;
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        args.out_dir = argv[++i];
      }
    }
    return args;
  }
};

// Accumulates one bench's measured series and writes BENCH_<name>.json.
// Rows are (params, metrics) pairs exactly as printed; summary metrics are
// the headline numbers CI trend lines track.
class Reporter {
 public:
  explicit Reporter(std::string name, const Args& args = {})
      : name_(std::move(name)), dir_(args.out_dir) {}

  void AddRow(std::vector<std::pair<std::string, sweep::ParamValue>> params,
              std::vector<std::pair<std::string, double>> metrics) {
    table_.Add(std::move(params), std::move(metrics));
  }

  void Summary(const std::string& metric, double value) {
    summary_[metric] = value;
  }

  sweep::ResultTable& table() { return table_; }

  // Writes the JSON file and prints where it landed; best-effort.
  std::string Write() {
    const std::string path =
        sweep::WriteBenchJsonFile(name_, summary_, table_, dir_);
    if (path.empty()) {
      std::fprintf(stderr, "warning: could not write BENCH_%s.json\n",
                   name_.c_str());
    } else {
      std::printf("\n[bench] wrote %s\n", path.c_str());
    }
    return path;
  }

 private:
  std::string name_;
  std::string dir_;
  sweep::ResultTable table_;
  std::map<std::string, double> summary_;
};

// Looks up one metric in a sweep result row; 0.0 when absent.
inline double MetricOf(const sweep::ResultRow& row, const std::string& name) {
  for (const auto& [k, v] : row.metrics) {
    if (k == name) return v;
  }
  return 0.0;
}

inline void Header(const std::string& title, const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

// Measures one (system, mode) point on a fresh config-A cluster.
inline double MeasureSystem(const std::string& system, int hosts,
                            const baselines::MicrobenchSpec& spec) {
  using namespace baselines;
  sim::Simulator sim;
  if (system == "JAX") {
    auto cluster = hw::Cluster::ConfigA(&sim, hosts);
    JaxMultiController jax(cluster.get());
    return jax.Measure(spec).computations_per_sec;
  }
  if (system == "PW") {
    auto cluster = hw::Cluster::ConfigA(&sim, hosts);
    PathwaysDriver pw(cluster.get());
    return pw.Measure(spec).computations_per_sec;
  }
  if (system == "TF") {
    auto cluster = hw::Cluster::ConfigA(&sim, hosts);
    Tf1SingleController tf(cluster.get());
    return tf.Measure(spec).computations_per_sec;
  }
  if (system == "Ray") {
    auto cluster = hw::Cluster::GpuVm(&sim, hosts);
    RayLike ray(cluster.get());
    return ray.Measure(spec).computations_per_sec;
  }
  std::fprintf(stderr, "unknown system %s\n", system.c_str());
  return 0;
}

}  // namespace pw::bench
