// Shared helpers for the benchmark binaries: each bench regenerates one
// table or figure from the paper's evaluation (§5), prints the measured
// series next to the paper's reported values where available, and emits a
// machine-readable BENCH_<name>.json (see docs/BENCHMARKS.md for the
// schema) so CI can track the perf trajectory across PRs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/jax_mc.h"
#include "baselines/microbench.h"
#include "baselines/pathways_driver.h"
#include "baselines/raylike.h"
#include "baselines/tf1.h"
#include "hw/cluster.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "sweep/param_grid.h"
#include "sweep/result_table.h"
#include "sweep/sweep_runner.h"

namespace pw::bench {

// Opt-in flag groups beyond the base --quick/--out; a bench passes the
// union of the groups it actually implements, and anything else on its
// command line is a hard usage error.
enum ExtraFlags : unsigned {
  kNoExtraFlags = 0,
  kDisaggFlag = 1u << 0,    // --disagg (bench_serving)
  kScenarioFlag = 1u << 1,  // --scenario <file> (scenario-driven benches)
  kSimcoreFlags = 1u << 2,  // --min-speedup <x>, --gbench (bench_simcore)
};

// Command line shared by every bench binary:
//   --quick            reduced-size run (CI smoke jobs; same code path,
//                      smaller grids)
//   --out <dir>        directory for BENCH_*.json (default $PWSIM_BENCH_DIR
//                      or .)
//   --disagg           bench_serving only: disaggregated prefill/decode mode
//                      (ratio x KV-transfer-bandwidth sweep, docs/SERVING.md)
//   --scenario <file>  scenario-driven benches: run this scenario file
//                      instead of the shipped scenarios/<name>.json
//   --min-speedup <x>  bench_simcore: enforced acceptance bar
//   --gbench           bench_simcore: also run the google-benchmark suite
// Unrecognized flags (and flags outside the bench's registered groups) are
// hard errors: usage goes to stderr and the process exits 2.
struct Args {
  bool quick = false;
  bool disagg = false;
  std::string out_dir;
  std::string scenario;
  double min_speedup = 2.0;
  bool gbench = false;

  static void Usage(FILE* out, const char* prog, unsigned extra) {
    std::fprintf(out, "usage: %s [--quick] [--out <dir>]", prog);
    if (extra & kDisaggFlag) std::fprintf(out, " [--disagg]");
    if (extra & kScenarioFlag) std::fprintf(out, " [--scenario <file>]");
    if (extra & kSimcoreFlags) {
      std::fprintf(out, " [--min-speedup <x>] [--gbench]");
    }
    std::fprintf(out,
                 "\n  --quick            reduced grid for CI smoke runs\n"
                 "  --out <dir>        directory for BENCH_*.json (default "
                 "$PWSIM_BENCH_DIR or .)\n");
    if (extra & kDisaggFlag) {
      std::fprintf(out,
                   "  --disagg           disaggregated prefill/decode mode\n");
    }
    if (extra & kScenarioFlag) {
      std::fprintf(out,
                   "  --scenario <file>  run this scenario file instead of "
                   "the shipped one\n");
    }
    if (extra & kSimcoreFlags) {
      std::fprintf(out,
                   "  --min-speedup <x>  enforced acceptance bar (default "
                   "2.0)\n"
                   "  --gbench           also run the google-benchmark "
                   "suite (when built in)\n");
    }
    std::fprintf(out, "  --help             this text\n");
  }

  static Args Parse(int argc, char** argv, unsigned extra = kNoExtraFlags) {
    Args args;
    auto value = [&](int* i, const char* flag) -> const char* {
      if (*i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '%s' expects a value\n", argv[0],
                     flag);
        Usage(stderr, argv[0], extra);
        std::exit(2);
      }
      return argv[++*i];
    };
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(a, "--out") == 0) {
        args.out_dir = value(&i, a);
      } else if ((extra & kDisaggFlag) != 0 && std::strcmp(a, "--disagg") == 0) {
        args.disagg = true;
      } else if ((extra & kScenarioFlag) != 0 &&
                 std::strcmp(a, "--scenario") == 0) {
        args.scenario = value(&i, a);
      } else if ((extra & kSimcoreFlags) != 0 &&
                 std::strcmp(a, "--min-speedup") == 0) {
        args.min_speedup = std::atof(value(&i, a));
      } else if ((extra & kSimcoreFlags) != 0 &&
                 std::strcmp(a, "--gbench") == 0) {
        args.gbench = true;
      } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
        Usage(stdout, argv[0], extra);
        std::exit(0);
      } else {
        std::fprintf(stderr, "%s: unrecognized flag '%s'\n", argv[0], a);
        Usage(stderr, argv[0], extra);
        std::exit(2);
      }
    }
    return args;
  }
};

// Accumulates one bench's measured series and writes BENCH_<name>.json.
// Rows are (params, metrics) pairs exactly as printed; summary metrics are
// the headline numbers CI trend lines track.
class Reporter {
 public:
  explicit Reporter(std::string name, const Args& args = {})
      : name_(std::move(name)), dir_(args.out_dir) {}

  void AddRow(std::vector<std::pair<std::string, sweep::ParamValue>> params,
              std::vector<std::pair<std::string, double>> metrics) {
    table_.Add(std::move(params), std::move(metrics));
  }

  void Summary(const std::string& metric, double value) {
    summary_[metric] = value;
  }

  sweep::ResultTable& table() { return table_; }

  // Writes the JSON file and prints where it landed; best-effort.
  std::string Write() {
    const std::string path =
        sweep::WriteBenchJsonFile(name_, summary_, table_, dir_);
    if (path.empty()) {
      std::fprintf(stderr, "warning: could not write BENCH_%s.json\n",
                   name_.c_str());
    } else {
      std::printf("\n[bench] wrote %s\n", path.c_str());
    }
    return path;
  }

 private:
  std::string name_;
  std::string dir_;
  sweep::ResultTable table_;
  std::map<std::string, double> summary_;
};

// Loads a scenario-driven bench's input: the --scenario override when given,
// else the shipped scenarios/<name>.json. Validates schema + family axes
// and checks the family is the one this bench's gates understand. Any
// problem prints clang-style diagnostics and exits 2.
inline scenario::Scenario LoadBenchScenario(const Args& args,
                                            const std::string& name,
                                            const std::string& family) {
  const std::string path = args.scenario.empty()
                               ? scenario::DefaultScenarioPath(name)
                               : args.scenario;
  scenario::Scenario s;
  scenario::DiagnosticEngine diags;
  if (!scenario::LoadScenarioFile(path, &s, &diags) ||
      !scenario::ValidateForFamily(&s, &diags)) {
    std::fputs(diags.Render().c_str(), stderr);
    std::exit(2);
  }
  if (s.family != family) {
    std::fprintf(stderr, "%s: expected a '%s' scenario, got family '%s'\n",
                 path.c_str(), family.c_str(), s.family.c_str());
    std::exit(2);
  }
  return s;
}

// Lowers the scenario through SweepRunner (writing BENCH_<name>.json like
// Reporter did) and reports where the file landed. Exits 2 on runner errors.
inline scenario::RunResult RunBenchScenario(const scenario::Scenario& s,
                                            const Args& args) {
  scenario::RunOptions opts;
  opts.quick = args.quick;
  opts.out_dir = args.out_dir;
  scenario::RunResult result;
  std::string error;
  if (!scenario::RunScenario(s, opts, &result, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::exit(2);
  }
  if (result.json_path.empty()) {
    std::fprintf(stderr, "warning: could not write BENCH_%s.json\n",
                 s.name.c_str());
  } else {
    std::printf("[bench] wrote %s\n", result.json_path.c_str());
  }
  return result;
}

// Looks up one summary metric from a scenario run; 0.0 when absent.
inline double SummaryOf(const std::map<std::string, double>& summary,
                        const std::string& key) {
  const auto it = summary.find(key);
  return it == summary.end() ? 0.0 : it->second;
}

// Looks up one metric in a sweep result row; 0.0 when absent.
inline double MetricOf(const sweep::ResultRow& row, const std::string& name) {
  for (const auto& [k, v] : row.metrics) {
    if (k == name) return v;
  }
  return 0.0;
}

inline void Header(const std::string& title, const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

// Measures one (system, mode) point on a fresh config-A cluster.
inline double MeasureSystem(const std::string& system, int hosts,
                            const baselines::MicrobenchSpec& spec) {
  using namespace baselines;
  sim::Simulator sim;
  if (system == "JAX") {
    auto cluster = hw::Cluster::ConfigA(&sim, hosts);
    JaxMultiController jax(cluster.get());
    return jax.Measure(spec).computations_per_sec;
  }
  if (system == "PW") {
    auto cluster = hw::Cluster::ConfigA(&sim, hosts);
    PathwaysDriver pw(cluster.get());
    return pw.Measure(spec).computations_per_sec;
  }
  if (system == "TF") {
    auto cluster = hw::Cluster::ConfigA(&sim, hosts);
    Tf1SingleController tf(cluster.get());
    return tf.Measure(spec).computations_per_sec;
  }
  if (system == "Ray") {
    auto cluster = hw::Cluster::GpuVm(&sim, hosts);
    RayLike ray(cluster.get());
    return ray.Measure(spec).computations_per_sec;
  }
  std::fprintf(stderr, "unknown system %s\n", system.c_str());
  return 0;
}

}  // namespace pw::bench
