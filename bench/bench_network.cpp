// Contended-network sweep over the flow-level Clos DCN (docs/NETWORK.md):
// oversubscription ratio x incast fan-in, with the abstract per-NIC fabric
// measured at every point as the baseline the scalar model predicts.
//
// The sweep gates on exactly the properties the tentpole claims:
//   1. Uncontended agreement: with one flow on a non-blocking Clos, the
//      flow fabric matches the abstract fabric to ~1us (NIC serialization
//      is the only bottleneck either way).
//   2. Incast: N senders converging on one host finish ~N x slower on the
//      flow fabric, while the abstract fabric — whose senders serialize on
//      their own NICs only — is flat in N. A scalar multiplier cannot
//      express this.
//   3. Oversubscription: a cross-leaf shuffle at R=4 pays >= 2x the R=1
//      completion time (leaf->spine uplinks throttle it), again invisible
//      to the abstract fabric.
//   4. Determinism: the sweep table is byte-identical between 1 and N
//      SweepRunner threads.
// Exit code is non-zero if any gate fails, so CI can gate on the binary.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "bench_common.h"
#include "net/dcn.h"
#include "sim/simulator.h"

namespace {

using namespace pw;

// Numeric parameter lookup in a finished sweep row (axes are typed).
double ParamOf(const sweep::ResultRow& row, const std::string& name) {
  for (const auto& [k, v] : row.params) {
    if (k != name) continue;
    if (const auto* d = std::get_if<double>(&v)) return *d;
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      return static_cast<double>(*i);
    }
  }
  return 0.0;
}

constexpr Bytes kMessageBytes = MiB(16);
constexpr int kHostsPerLeaf = 8;
constexpr int kNumSpines = 4;
constexpr int kHosts = 32;

net::DcnParams MakeParams(bool flow_mode, double oversub) {
  net::DcnParams p;  // 20us latency, 12.5 GB/s NIC, 128 B header
  p.clos.enabled = flow_mode;
  p.clos.hosts_per_leaf = kHostsPerLeaf;
  p.clos.num_spines = kNumSpines;
  p.clos.oversubscription = oversub;
  return p;
}

// N senders (hosts 1..fan_in) -> host 0; returns last-arrival time in ms.
double MeasureIncast(bool flow_mode, double oversub, int fan_in) {
  sim::Simulator sim;
  net::DcnFabric dcn(&sim, MakeParams(flow_mode, oversub));
  for (int h = 0; h < kHosts; ++h) dcn.AddHost(net::HostId(h));
  std::int64_t last_ns = 0;
  for (int s = 1; s <= fan_in; ++s) {
    dcn.Send(net::HostId(s), net::HostId(0), kMessageBytes,
             [&] { last_ns = sim.now().nanos(); });
  }
  sim.Run();
  return static_cast<double>(last_ns) / 1e6;
}

// Every host on leaf 0 streams to its counterpart on leaf 1 concurrently;
// returns last-arrival time in ms. Exercises the leaf->spine uplinks, whose
// bandwidth encodes the oversubscription ratio.
double MeasureShuffle(bool flow_mode, double oversub) {
  sim::Simulator sim;
  net::DcnFabric dcn(&sim, MakeParams(flow_mode, oversub));
  for (int h = 0; h < kHosts; ++h) dcn.AddHost(net::HostId(h));
  std::int64_t last_ns = 0;
  for (int s = 0; s < kHostsPerLeaf; ++s) {
    dcn.Send(net::HostId(s), net::HostId(kHostsPerLeaf + s), kMessageBytes,
             [&] { last_ns = sim.now().nanos(); });
  }
  sim.Run();
  return static_cast<double>(last_ns) / 1e6;
}

sweep::Metrics MeasurePoint(const sweep::ParamPoint& p) {
  const double oversub = p.GetDouble("oversub");
  const int fan_in = static_cast<int>(p.GetInt("fan_in"));
  const double incast_flow = MeasureIncast(true, oversub, fan_in);
  const double incast_abstract = MeasureIncast(false, oversub, fan_in);
  const double shuffle_flow = MeasureShuffle(true, oversub);
  const double shuffle_abstract = MeasureShuffle(false, oversub);
  return sweep::Metrics{
      {"incast_flow_ms", incast_flow},
      {"incast_abstract_ms", incast_abstract},
      {"incast_slowdown", incast_flow / incast_abstract},
      {"shuffle_flow_ms", shuffle_flow},
      {"shuffle_abstract_ms", shuffle_abstract},
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "Contended DCN sweep: oversubscription x incast over the flow-level Clos",
      "incast and oversubscription effects the scalar per-NIC fabric cannot "
      "express (ROADMAP item 2)");
  bench::Reporter report("network", args);

  sweep::ParamGrid grid;
  if (args.quick) {
    grid.AxisDoubles("oversub", {1.0, 4.0}).AxisInts("fan_in", {1, 8});
  } else {
    grid.AxisDoubles("oversub", {1.0, 2.0, 4.0}).AxisInts("fan_in", {1, 4, 8, 16});
  }

  sweep::SweepRunner runner;  // default thread count
  const sweep::ResultTable table = runner.Run(grid, MeasurePoint);

  // Determinism gate: 1-thread rerun must produce a byte-identical table.
  sweep::SweepRunner serial({.threads = 1});
  const sweep::ResultTable table_1t = serial.Run(grid, MeasurePoint);
  std::ostringstream csv_mt, csv_1t;
  table.WriteCsv(csv_mt);
  table_1t.WriteCsv(csv_1t);
  const bool deterministic = csv_mt.str() == csv_1t.str();

  bool gates_ok = deterministic;
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
  }

  std::printf("%8s %7s | %14s %14s %9s | %14s %14s\n", "oversub", "fan_in",
              "incast_flow", "incast_abs", "slowdown", "shuffle_flow",
              "shuffle_abs");
  double max_incast_slowdown = 0;
  double shuffle_r1 = 0, shuffle_r4 = 0;
  for (const sweep::ResultRow& row : table.rows()) {
    const double oversub = ParamOf(row, "oversub");
    const int fan_in = static_cast<int>(ParamOf(row, "fan_in"));
    const double incast_flow = bench::MetricOf(row, "incast_flow_ms");
    const double incast_abstract = bench::MetricOf(row, "incast_abstract_ms");
    const double slowdown = bench::MetricOf(row, "incast_slowdown");
    const double shuffle_flow = bench::MetricOf(row, "shuffle_flow_ms");
    std::printf("%8.1f %7d | %12.3fms %12.3fms %8.2fx | %12.3fms %12.3fms\n",
                oversub, fan_in, incast_flow, incast_abstract, slowdown,
                shuffle_flow, bench::MetricOf(row, "shuffle_abstract_ms"));
    report.AddRow(row.params, row.metrics);
    max_incast_slowdown = std::max(max_incast_slowdown, slowdown);
    if (fan_in == 1) {
      // Gate 1: uncontended agreement (single flow, any R: the access links
      // are the bottleneck either way).
      const double diff_ms = std::abs(incast_flow - incast_abstract);
      if (diff_ms > 1e-3) {
        std::fprintf(stderr,
                     "FAIL: uncontended flow fabric off abstract by %.4f ms "
                     "at R=%.1f\n",
                     diff_ms, oversub);
        gates_ok = false;
      }
      if (oversub == 1.0) shuffle_r1 = shuffle_flow;
      if (oversub == 4.0) shuffle_r4 = shuffle_flow;
    }
    if (fan_in >= 4) {
      // Gate 2: incast bites ~N x on the flow fabric, not at all on the
      // abstract one.
      if (slowdown < 0.7 * fan_in) {
        std::fprintf(stderr,
                     "FAIL: incast slowdown %.2fx below 0.7*N for N=%d\n",
                     slowdown, fan_in);
        gates_ok = false;
      }
    }
  }
  // Gate 3: oversubscription throttles the cross-leaf shuffle.
  const double oversub_penalty = shuffle_r4 / shuffle_r1;
  if (!(oversub_penalty >= 2.0)) {
    std::fprintf(stderr,
                 "FAIL: R=4 shuffle only %.2fx of R=1 (expected >= 2x)\n",
                 oversub_penalty);
    gates_ok = false;
  }

  std::printf("\nincast slowdown (max over grid): %.2fx | R=4/R=1 shuffle "
              "penalty: %.2fx | deterministic: %s\n",
              max_incast_slowdown, oversub_penalty,
              deterministic ? "yes" : "NO");

  report.Summary("max_incast_slowdown", max_incast_slowdown);
  report.Summary("oversub_shuffle_penalty", oversub_penalty);
  report.Summary("deterministic", deterministic ? 1.0 : 0.0);
  report.Summary("gates_ok", gates_ok ? 1.0 : 0.0);
  report.Write();
  if (!gates_ok) {
    std::fprintf(stderr, "bench_network: GATES FAILED\n");
    return 1;
  }
  return 0;
}
