// Contended-network sweep over the flow-level Clos DCN (docs/NETWORK.md):
// oversubscription ratio x incast fan-in, with the abstract per-NIC fabric
// measured at every point as the baseline the scalar model predicts.
//
// Thin wrapper: the measurement harness lives in the "network" family
// (src/scenario/family_network.cpp) and the grid in scenarios/network.json
// (override with --scenario <file>). This main prints the table and gates on
// exactly the properties the flow-level tentpole claims:
//   1. Uncontended agreement: with one flow on a non-blocking Clos, the
//      flow fabric matches the abstract fabric to ~1us (NIC serialization
//      is the only bottleneck either way).
//   2. Incast: N senders converging on one host finish ~N x slower on the
//      flow fabric, while the abstract fabric — whose senders serialize on
//      their own NICs only — is flat in N.
//   3. Oversubscription: the cross-leaf shuffle at the largest swept R pays
//      >= 2x the smallest-R completion time (leaf->spine uplinks throttle
//      it), again invisible to the abstract fabric.
//   4. Determinism: the sweep table is byte-identical between 1 and N
//      SweepRunner threads.
// Exit code is non-zero if any gate fails, so CI can gate on the binary.
#include <cmath>
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args =
      bench::Args::Parse(argc, argv, bench::kScenarioFlag);
  bench::Header(
      "Contended DCN sweep: oversubscription x incast over the flow-level Clos",
      "incast and oversubscription effects the scalar per-NIC fabric cannot "
      "express (ROADMAP item 2)");

  const scenario::Scenario s =
      bench::LoadBenchScenario(args, "network", "network");
  const scenario::RunResult result = bench::RunBenchScenario(s, args);

  std::printf("%8s %7s | %14s %14s %9s | %14s %14s\n", "oversub", "fan_in",
              "incast_flow", "incast_abs", "slowdown", "shuffle_flow",
              "shuffle_abs");
  bool gates_ok = true;
  for (std::size_t i = 0; i < result.table.rows().size(); ++i) {
    const auto& row = result.table.rows()[i];
    const auto& p = result.points[i];
    const double oversub = p.GetDouble("oversub");
    const int fan_in = static_cast<int>(p.GetInt("fan_in"));
    const double incast_flow = bench::MetricOf(row, "incast_flow_ms");
    const double incast_abstract = bench::MetricOf(row, "incast_abstract_ms");
    const double slowdown = bench::MetricOf(row, "incast_slowdown");
    std::printf("%8.1f %7d | %12.3fms %12.3fms %8.2fx | %12.3fms %12.3fms\n",
                oversub, fan_in, incast_flow, incast_abstract, slowdown,
                bench::MetricOf(row, "shuffle_flow_ms"),
                bench::MetricOf(row, "shuffle_abstract_ms"));
    if (fan_in == 1) {
      // Gate 1: uncontended agreement (single flow, any R: the access links
      // are the bottleneck either way).
      const double diff_ms = std::abs(incast_flow - incast_abstract);
      if (diff_ms > 1e-3) {
        std::fprintf(stderr,
                     "FAIL: uncontended flow fabric off abstract by %.4f ms "
                     "at R=%.1f\n",
                     diff_ms, oversub);
        gates_ok = false;
      }
    }
    if (fan_in >= 4) {
      // Gate 2: incast bites ~N x on the flow fabric, not at all on the
      // abstract one.
      if (slowdown < 0.7 * fan_in) {
        std::fprintf(stderr,
                     "FAIL: incast slowdown %.2fx below 0.7*N for N=%d\n",
                     slowdown, fan_in);
        gates_ok = false;
      }
    }
  }

  // Gate 3: oversubscription throttles the cross-leaf shuffle.
  const double oversub_penalty =
      bench::SummaryOf(result.summary, "oversub_shuffle_penalty");
  if (!(oversub_penalty >= 2.0)) {
    std::fprintf(stderr,
                 "FAIL: high-R shuffle only %.2fx of low-R (expected >= 2x)\n",
                 oversub_penalty);
    gates_ok = false;
  }
  // Gate 4: byte-identical sweep table across SweepRunner thread counts.
  const bool deterministic =
      bench::SummaryOf(result.summary, "deterministic") > 0.5;
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
    gates_ok = false;
  }

  std::printf("\nincast slowdown (max over grid): %.2fx | shuffle "
              "penalty: %.2fx | deterministic: %s\n",
              bench::SummaryOf(result.summary, "max_incast_slowdown"),
              oversub_penalty, deterministic ? "yes" : "NO");
  if (!gates_ok) {
    std::fprintf(stderr, "bench_network: GATES FAILED\n");
    return 1;
  }
  return 0;
}
