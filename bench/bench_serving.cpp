// LLM serving regime (docs/SERVING.md): two open-loop tenants drive a
// shared slice through the iteration-level batcher while per-sequence KV
// caches live in the ObjectStore — grown one append per decode step,
// paged to host DRAM under HBM pressure, read through / restored by the
// next decode's argument transfer.
//
// Swept over arrival-rate x batch-policy x KV-budget-scale via
// SweepRunner. HBM is sized *below* half the aggregate projected KV
// working set, so the 0.5x budget point runs with spilling active.
// Hard gates (non-zero exit):
//   * forward progress: every point quiesces with the batcher idle, every
//     offered request finished or was shed, and the store's wedge check
//     passes — zero deadlocks at every point;
//   * continuous batching earns its keep: >= 1.5x the static baseline's
//     goodput at the highest swept arrival rate;
//   * memory pressure is real: the 0.5x-budget points actually spilled;
//   * tail latency: p99 TTFT for the continuous batcher at the lowest
//     swept rate stays under a pinned bound;
//   * the sweep table is byte-identical between 1 and N runner threads.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pathways/pathways.h"
#include "serving/serving.h"

namespace {

using namespace pw;
using pathways::PathwaysRuntime;
using serving::BatcherConfig;
using serving::BatchPolicy;
using serving::KvCacheConfig;
using serving::ServingMetrics;
using serving::ServingTenant;
using serving::ServingTrace;
using serving::TenantSpec;

constexpr Bytes kKvBytesPerToken = KiB(4);
constexpr int kMaxBatch = 8;
constexpr int kMinPrefill = 8, kMaxPrefill = 48;
// Wide output-length spread: static batches straggle on the long tail,
// which is exactly the regime continuous batching exists for.
constexpr int kMinDecode = 2, kMaxDecode = 32;
// Projected full KV of one worst-case sequence, per device shard.
constexpr int kMaxKvTokens = kMaxPrefill + kMaxDecode - 1;
// Aggregate projected KV working set of a full batch, per device shard.
constexpr Bytes kWorkingSetPerShard =
    static_cast<Bytes>(kMaxBatch) * kMaxKvTokens * kKvBytesPerToken;

sweep::Metrics MeasurePoint(const sweep::ParamPoint& p, bool quick) {
  const double rate = p.GetDouble("rate_per_s");  // total across tenants
  const bool continuous = p.GetInt("policy_continuous") != 0;
  const double kv_scale = p.GetDouble("kv_scale");
  const Duration horizon = Duration::Millis(quick ? 2 : 8);

  sim::Simulator sim;
  hw::SystemParams params = hw::SystemParams::TpuDefault();
  params.host_jitter_frac = 0;
  BatcherConfig cfg;
  cfg.policy = continuous ? BatchPolicy::kContinuous : BatchPolicy::kStatic;
  cfg.max_batch = kMaxBatch;
  cfg.token_budget = 256;
  cfg.kv_budget_per_device =
      static_cast<Bytes>(kv_scale * static_cast<double>(kWorkingSetPerShard));
  // HBM far below the working set (plus fixed staging headroom): even the
  // 0.5x-budget point must overflow KV into host DRAM to keep serving.
  params.hbm_capacity =
      static_cast<Bytes>(0.2 * static_cast<double>(kWorkingSetPerShard)) +
      cfg.activation_bytes_per_shard + cfg.output_bytes_per_shard + KiB(128);
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, /*islands=*/1,
                                               /*hosts_per_island=*/1,
                                               /*devices_per_host=*/2);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
  pathways::Client* client = runtime.CreateClient();
  pathways::VirtualSlice slice = client->AllocateSlice(2).value();

  ServingMetrics metrics;
  ServingTrace trace;
  serving::Batcher batcher(client, slice, KvCacheConfig{kKvBytesPerToken},
                           cfg, &metrics, &trace);

  auto tenant_spec = [&](int t) {
    TenantSpec spec;
    spec.arrivals.process = t == 0 ? workload::ArrivalProcess::kPoisson
                                   : workload::ArrivalProcess::kUniform;
    spec.arrivals.rate_per_sec = rate / 2;
    spec.arrivals.horizon = horizon;
    spec.arrivals.seed = 11 + static_cast<std::uint64_t>(t) * 17;
    spec.min_prefill_tokens = kMinPrefill;
    spec.max_prefill_tokens = kMaxPrefill;
    spec.min_decode_tokens = kMinDecode;
    spec.max_decode_tokens = kMaxDecode;
    spec.token_seed = 101 + static_cast<std::uint64_t>(t);
    return spec;
  };
  ServingTenant tenant0(0, &batcher, &sim, tenant_spec(0));
  ServingTenant tenant1(1, &batcher, &sim, tenant_spec(1));
  tenant0.Start();
  tenant1.Start();
  sim.Run();

  runtime.object_store().CheckNoReservationWedge();
  const bool all_accounted =
      batcher.finished() + batcher.shed() == metrics.arrivals();
  const bool deadlocked =
      sim.Deadlocked() || !batcher.idle() || !all_accounted;
  const pathways::ObjectStore& store = runtime.object_store();
  const double seconds = sim.now().ToSeconds();

  sweep::Metrics m;
  m.emplace_back("arrivals", static_cast<double>(metrics.arrivals()));
  m.emplace_back("finished", static_cast<double>(batcher.finished()));
  m.emplace_back("shed", static_cast<double>(batcher.shed()));
  m.emplace_back("iterations", static_cast<double>(batcher.iterations()));
  m.emplace_back("goodput_per_s",
                 static_cast<double>(batcher.finished()) / seconds);
  m.emplace_back("tokens_per_s",
                 static_cast<double>(metrics.prefills() + metrics.tokens()) /
                     seconds);
  m.emplace_back("ttft_p50_us", metrics.TtftUs(50));
  m.emplace_back("ttft_p99_us", metrics.TtftUs(99));
  m.emplace_back("token_p50_us", metrics.TokenLatencyUs(50));
  m.emplace_back("token_p99_us", metrics.TokenLatencyUs(99));
  m.emplace_back("spills", static_cast<double>(store.spills_completed()));
  m.emplace_back("dram_reads", static_cast<double>(store.dram_reads()));
  m.emplace_back("kv_grows", static_cast<double>(store.grows_completed()));
  m.emplace_back("deadlocked", deadlocked ? 1.0 : 0.0);
  m.emplace_back("leaked_buffers",
                 static_cast<double>(store.live_buffers()));
  // Trace checksum folded into doubles: any nondeterminism in event order
  // shows up in the cross-thread-count CSV comparison.
  m.emplace_back("trace_lo",
                 static_cast<double>(trace.Checksum() & 0xffffffffULL));
  m.emplace_back("trace_hi", static_cast<double>(trace.Checksum() >> 32));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const pw::bench::Args args = pw::bench::Args::Parse(argc, argv);
  pw::bench::Header(
      "LLM serving: continuous batching + KV cache under memory pressure",
      "iteration-level batching over gang-scheduled slices; per-sequence KV "
      "grows in the object store and pages to host DRAM under pressure");

  pw::sweep::ParamGrid grid;
  grid.AxisDoubles("rate_per_s",
                   args.quick ? std::vector<double>{1500, 24000}
                              : std::vector<double>{1500, 8000, 24000})
      .AxisInts("policy_continuous", {1, 0})
      .AxisDoubles("kv_scale", args.quick ? std::vector<double>{0.5}
                                          : std::vector<double>{0.5, 1.0});

  auto point_fn = [&args](const pw::sweep::ParamPoint& p) {
    return MeasurePoint(p, args.quick);
  };
  pw::sweep::SweepRunner runner;  // hardware_concurrency threads
  pw::sweep::ResultTable table = runner.Run(grid, point_fn);

  // Determinism gate: byte-identical table from a single-threaded rerun.
  pw::sweep::SweepRunner serial(pw::sweep::SweepRunner::Options{.threads = 1});
  pw::sweep::ResultTable table1 = serial.Run(grid, point_fn);
  std::ostringstream csv_mt, csv_1t;
  table.WriteCsv(csv_mt);
  table1.WriteCsv(csv_1t);
  const bool deterministic = csv_mt.str() == csv_1t.str();

  const auto points = grid.Points();
  double max_rate = 0, min_rate = 1e18;
  for (const auto& pt : points) {
    max_rate = std::max(max_rate, pt.GetDouble("rate_per_s"));
    min_rate = std::min(min_rate, pt.GetDouble("rate_per_s"));
  }

  std::printf("%10s %6s %8s %9s %6s %10s %9s %9s %9s %7s %8s\n", "rate/s",
              "policy", "kv_x", "goodput/s", "shed", "ttft_p50", "ttft_p99",
              "tok_p50", "tok_p99", "spills", "deadlock");
  bool any_deadlock = false;
  bool any_leak = false;
  double spills_at_half_budget = 0;
  double p99_ttft_low_rate_cont = 0;
  // goodput[policy][kv_scale] at the highest swept rate.
  std::map<std::pair<int, double>, double> top_rate_goodput;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    const auto& row = table.rows()[i];
    const double rate = points[i].GetDouble("rate_per_s");
    const bool cont = points[i].GetInt("policy_continuous") != 0;
    const double scale = points[i].GetDouble("kv_scale");
    const double goodput = pw::bench::MetricOf(row, "goodput_per_s");
    const bool deadlocked = pw::bench::MetricOf(row, "deadlocked") > 0.5;
    any_deadlock |= deadlocked;
    any_leak |= pw::bench::MetricOf(row, "leaked_buffers") > 0.5;
    if (scale == 0.5) {
      spills_at_half_budget += pw::bench::MetricOf(row, "spills");
    }
    if (cont && rate == min_rate) {
      p99_ttft_low_rate_cont = std::max(p99_ttft_low_rate_cont,
                                        pw::bench::MetricOf(row, "ttft_p99_us"));
    }
    if (rate == max_rate) top_rate_goodput[{cont ? 1 : 0, scale}] = goodput;
    std::printf("%10.0f %6s %7.2fx %9.0f %6.0f %9.0fus %8.0fus %8.0fus %8.0fus %7.0f %8s\n",
                rate, cont ? "cont" : "static", scale, goodput,
                pw::bench::MetricOf(row, "shed"),
                pw::bench::MetricOf(row, "ttft_p50_us"),
                pw::bench::MetricOf(row, "ttft_p99_us"),
                pw::bench::MetricOf(row, "token_p50_us"),
                pw::bench::MetricOf(row, "token_p99_us"),
                pw::bench::MetricOf(row, "spills"),
                deadlocked ? "YES" : "no");
  }

  // Continuous-vs-static goodput at the highest swept rate, worst case
  // over KV budget scales.
  double min_speedup = 1e18;
  for (const auto& [key, goodput] : top_rate_goodput) {
    if (key.first != 1) continue;
    const auto st = top_rate_goodput.find({0, key.second});
    if (st == top_rate_goodput.end() || st->second <= 0) continue;
    min_speedup = std::min(min_speedup, goodput / st->second);
  }
  std::printf("\ncontinuous vs static goodput at %.0f req/s: %.2fx (worst "
              "KV scale)\n", max_rate, min_speedup);
  std::printf("determinism across SweepRunner thread counts: %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  pw::bench::Reporter report("serving", args);
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    report.AddRow(table.rows()[i].params, table.rows()[i].metrics);
  }
  report.Summary("deadlocks", any_deadlock ? 1.0 : 0.0);
  report.Summary("continuous_goodput_x", min_speedup);
  report.Summary("spills_at_half_budget", spills_at_half_budget);
  report.Summary("p99_ttft_low_rate_us", p99_ttft_low_rate_cont);
  report.Summary("deterministic", deterministic ? 1.0 : 0.0);
  report.Write();

  bool fail = false;
  if (any_deadlock) {
    std::fprintf(stderr, "FAIL: deadlock / unfinished point detected\n");
    fail = true;
  }
  if (any_leak) {
    std::fprintf(stderr, "FAIL: object-store buffers leaked at quiescence\n");
    fail = true;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
    fail = true;
  }
  if (min_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: continuous batching only %.2fx static goodput at the "
                 "highest rate (need >= 1.5x)\n",
                 min_speedup);
    fail = true;
  }
  if (spills_at_half_budget <= 0) {
    std::fprintf(stderr,
                 "FAIL: no spilling at the 0.5x KV budget — memory pressure "
                 "was not real\n");
    fail = true;
  }
  const double p99_ttft_bound_us = 2000.0;
  if (p99_ttft_low_rate_cont > p99_ttft_bound_us) {
    std::fprintf(stderr,
                 "FAIL: p99 TTFT %.0fus at the lowest rate (continuous) "
                 "exceeds %.0fus\n",
                 p99_ttft_low_rate_cont, p99_ttft_bound_us);
    fail = true;
  }
  if (!fail) {
    std::printf("gates: zero deadlocks, continuous %.2fx >= 1.5x static, "
                "spilling active at 0.5x budget, p99 TTFT %.0fus <= %.0fus, "
                "deterministic\n",
                min_speedup, p99_ttft_low_rate_cont, p99_ttft_bound_us);
  }
  return fail ? 1 : 0;
}
