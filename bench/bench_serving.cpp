// LLM serving regime (docs/SERVING.md): two open-loop tenants drive a
// shared slice through the iteration-level batcher while per-sequence KV
// caches live in the ObjectStore — grown one append per decode step,
// paged to host DRAM under HBM pressure, read through / restored by the
// next decode's argument transfer.
//
// Swept over arrival-rate x batch-policy x KV-budget-scale via
// SweepRunner. HBM is sized *below* half the aggregate projected KV
// working set, so the 0.5x budget point runs with spilling active.
// Hard gates (non-zero exit):
//   * forward progress: every point quiesces with the batcher idle, every
//     offered request finished or was shed, and the store's wedge check
//     passes — zero deadlocks at every point;
//   * continuous batching earns its keep: >= 1.5x the static baseline's
//     goodput at the highest swept arrival rate;
//   * memory pressure is real: the 0.5x-budget points actually spilled;
//   * tail latency: p99 TTFT for the continuous batcher at the lowest
//     swept rate stays under a pinned bound;
//   * the sweep table is byte-identical between 1 and N runner threads.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pathways/pathways.h"
#include "serving/serving.h"

namespace {

using namespace pw;
using pathways::PathwaysRuntime;
using serving::BatcherConfig;
using serving::BatchPolicy;
using serving::KvCacheConfig;
using serving::ServingMetrics;
using serving::ServingTenant;
using serving::ServingTrace;
using serving::TenantSpec;

constexpr Bytes kKvBytesPerToken = KiB(4);
constexpr int kMaxBatch = 8;
constexpr int kMinPrefill = 8, kMaxPrefill = 48;
// Wide output-length spread: static batches straggle on the long tail,
// which is exactly the regime continuous batching exists for.
constexpr int kMinDecode = 2, kMaxDecode = 32;
// Projected full KV of one worst-case sequence, per device shard.
constexpr int kMaxKvTokens = kMaxPrefill + kMaxDecode - 1;
// Aggregate projected KV working set of a full batch, per device shard.
constexpr Bytes kWorkingSetPerShard =
    static_cast<Bytes>(kMaxBatch) * kMaxKvTokens * kKvBytesPerToken;

sweep::Metrics MeasurePoint(const sweep::ParamPoint& p, bool quick) {
  const double rate = p.GetDouble("rate_per_s");  // total across tenants
  const bool continuous = p.GetInt("policy_continuous") != 0;
  const double kv_scale = p.GetDouble("kv_scale");
  const Duration horizon = Duration::Millis(quick ? 2 : 8);

  sim::Simulator sim;
  hw::SystemParams params = hw::SystemParams::TpuDefault();
  params.host_jitter_frac = 0;
  BatcherConfig cfg;
  cfg.policy = continuous ? BatchPolicy::kContinuous : BatchPolicy::kStatic;
  cfg.max_batch = kMaxBatch;
  cfg.token_budget = 256;
  cfg.kv_budget_per_device =
      static_cast<Bytes>(kv_scale * static_cast<double>(kWorkingSetPerShard));
  // HBM far below the working set (plus fixed staging headroom): even the
  // 0.5x-budget point must overflow KV into host DRAM to keep serving.
  params.hbm_capacity =
      static_cast<Bytes>(0.2 * static_cast<double>(kWorkingSetPerShard)) +
      cfg.activation_bytes_per_shard + cfg.output_bytes_per_shard + KiB(128);
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, /*islands=*/1,
                                               /*hosts_per_island=*/1,
                                               /*devices_per_host=*/2);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
  pathways::Client* client = runtime.CreateClient();
  pathways::VirtualSlice slice = client->AllocateSlice(2).value();

  ServingMetrics metrics;
  ServingTrace trace;
  serving::Batcher batcher(client, slice, KvCacheConfig{kKvBytesPerToken},
                           cfg, &metrics, &trace);

  auto tenant_spec = [&](int t) {
    TenantSpec spec;
    spec.arrivals.process = t == 0 ? workload::ArrivalProcess::kPoisson
                                   : workload::ArrivalProcess::kUniform;
    spec.arrivals.rate_per_sec = rate / 2;
    spec.arrivals.horizon = horizon;
    spec.arrivals.seed = 11 + static_cast<std::uint64_t>(t) * 17;
    spec.min_prefill_tokens = kMinPrefill;
    spec.max_prefill_tokens = kMaxPrefill;
    spec.min_decode_tokens = kMinDecode;
    spec.max_decode_tokens = kMaxDecode;
    spec.token_seed = 101 + static_cast<std::uint64_t>(t);
    return spec;
  };
  ServingTenant tenant0(0, &batcher, &sim, tenant_spec(0));
  ServingTenant tenant1(1, &batcher, &sim, tenant_spec(1));
  tenant0.Start();
  tenant1.Start();
  sim.Run();

  runtime.object_store().CheckNoReservationWedge();
  const bool all_accounted =
      batcher.finished() + batcher.shed() == metrics.arrivals();
  const bool deadlocked =
      sim.Deadlocked() || !batcher.idle() || !all_accounted;
  const pathways::ObjectStore& store = runtime.object_store();
  const double seconds = sim.now().ToSeconds();

  sweep::Metrics m;
  m.emplace_back("arrivals", static_cast<double>(metrics.arrivals()));
  m.emplace_back("finished", static_cast<double>(batcher.finished()));
  m.emplace_back("shed", static_cast<double>(batcher.shed()));
  m.emplace_back("iterations", static_cast<double>(batcher.iterations()));
  m.emplace_back("goodput_per_s",
                 static_cast<double>(batcher.finished()) / seconds);
  m.emplace_back("tokens_per_s",
                 static_cast<double>(metrics.prefills() + metrics.tokens()) /
                     seconds);
  m.emplace_back("ttft_p50_us", metrics.TtftUs(50));
  m.emplace_back("ttft_p99_us", metrics.TtftUs(99));
  m.emplace_back("token_p50_us", metrics.TokenLatencyUs(50));
  m.emplace_back("token_p99_us", metrics.TokenLatencyUs(99));
  m.emplace_back("spills", static_cast<double>(store.spills_completed()));
  m.emplace_back("dram_reads", static_cast<double>(store.dram_reads()));
  m.emplace_back("kv_grows", static_cast<double>(store.grows_completed()));
  m.emplace_back("deadlocked", deadlocked ? 1.0 : 0.0);
  m.emplace_back("leaked_buffers",
                 static_cast<double>(store.live_buffers()));
  // Trace checksum folded into doubles: any nondeterminism in event order
  // shows up in the cross-thread-count CSV comparison.
  m.emplace_back("trace_lo",
                 static_cast<double>(trace.Checksum() & 0xffffffffULL));
  m.emplace_back("trace_hi", static_cast<double>(trace.Checksum() >> 32));
  return m;
}

// ---------------------------------------------------------------------------
// Disaggregated mode (--disagg, docs/SERVING.md): prefill gangs on island 0
// stream finished KV over the DCN to decode gangs on island 1, with the
// colocated continuous batcher at EQUAL device count measured at every
// point as the baseline. Costs come from a src/models/ decoder-only
// transformer (Decoder3B) instead of the analytic constants, so the KV
// bytes crossing the fabric are the model's real bf16 K+V rows. Swept over
// prefill:decode device ratio x DCN bandwidth scale x arrival rate.
// Decode-island HBM sits at ~0.5x its KV budget, so transfers land into an
// island that is actively paging KV. Hard gates (non-zero exit):
//   * zero deadlocks and zero leaked shards at every point — including
//     transfers crossing the degraded (0.25x NIC) fabric into 0.5x-budget
//     memory pressure;
//   * disaggregation earns its keep: at the best device ratio, disagg p99
//     per-token latency beats colocated at the top arrival rate on the
//     healthy fabric (decode iterations never stall behind prompts);
//   * p99 TTFT at that same point stays under a pinned bound (the handoff
//     may cost a transfer, but not an unbounded one);
//   * the sweep table is byte-identical between 1 and N runner threads.

constexpr int kDisaggDevices = 4;  // per arm: P prefill + (4-P) decode

// Decode-island KV working set per shard at the reference 2:2 split; HBM
// is fixed across every point at half of it (plus staging headroom).
Bytes DisaggHbm(const BatcherConfig& cfg) {
  const models::TransformerConfig model = models::TransformerConfig::Decoder3B();
  const Bytes kv_per_shard = model.KvBytesPerToken() / 2;
  const Bytes working_set =
      static_cast<Bytes>(kMaxBatch) * kMaxKvTokens * kv_per_shard;
  return working_set / 2 + cfg.activation_bytes_per_shard +
         cfg.output_bytes_per_shard + MiB(1);
}

sweep::Metrics MeasureDisaggPoint(const sweep::ParamPoint& p, bool quick) {
  const double rate = p.GetDouble("rate_per_s");  // total across tenants
  const int prefill_devices = p.GetInt("prefill_devices");
  const int decode_devices = kDisaggDevices - prefill_devices;
  const double dcn_scale = p.GetDouble("dcn_scale");
  const Duration horizon = Duration::Millis(quick ? 1000 : 4000);
  const models::TransformerConfig model = models::TransformerConfig::Decoder3B();

  auto tenant_spec = [&](int t) {
    TenantSpec spec;
    spec.arrivals.process = t == 0 ? workload::ArrivalProcess::kPoisson
                                   : workload::ArrivalProcess::kUniform;
    spec.arrivals.rate_per_sec = rate / 2;
    spec.arrivals.horizon = horizon;
    spec.arrivals.seed = 11 + static_cast<std::uint64_t>(t) * 17;
    spec.min_prefill_tokens = kMinPrefill;
    spec.max_prefill_tokens = kMaxPrefill;
    spec.min_decode_tokens = kMinDecode;
    spec.max_decode_tokens = kMaxDecode;
    spec.token_seed = 101 + static_cast<std::uint64_t>(t);
    return spec;
  };
  auto base_cfg = [&] {
    BatcherConfig cfg;
    cfg.policy = BatchPolicy::kContinuous;
    cfg.max_batch = kMaxBatch;
    cfg.token_budget = 256;
    return cfg;
  };
  // Projected-KV admission budget for a decode role with `shards` devices.
  auto kv_budget = [&](int shards) {
    return static_cast<Bytes>(kMaxBatch) * kMaxKvTokens *
           (model.KvBytesPerToken() / shards);
  };

  sweep::Metrics m;
  bool deadlocked = false;
  double leaked = 0;

  // --- Disaggregated arm: P prefill shards (island 0) + D decode (1) ---
  {
    sim::Simulator sim;
    hw::SystemParams params = hw::SystemParams::TpuDefault();
    params.host_jitter_frac = 0;
    params.hbm_capacity = DisaggHbm(base_cfg());
    auto cluster = std::make_unique<hw::Cluster>(
        &sim, params, /*islands=*/2, /*hosts_per_island=*/1,
        /*devices_per_host=*/kDisaggDevices);
    cluster->dcn().SetNicBandwidthScale(net::HostId(0), dcn_scale);
    cluster->dcn().SetNicBandwidthScale(net::HostId(1), dcn_scale);
    PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
    pathways::Client* client = runtime.CreateClient();

    const auto prefill_costs =
        serving::ModelServingCosts::Derive(model, params, prefill_devices);
    const auto decode_costs =
        serving::ModelServingCosts::Derive(model, params, decode_devices);
    ServingMetrics metrics;
    ServingTrace trace;
    BatcherConfig pcfg = base_cfg();
    pcfg.role = serving::BatcherRole::kPrefill;
    prefill_costs.Apply(&pcfg);
    serving::Batcher prefill(
        client, client->AllocateSlice(prefill_devices, hw::IslandId(0)).value(),
        prefill_costs.KvConfig(), pcfg, &metrics, &trace);
    BatcherConfig dcfg = base_cfg();
    dcfg.role = serving::BatcherRole::kDecode;
    dcfg.kv_budget_per_device = kv_budget(decode_devices);
    decode_costs.Apply(&dcfg);
    serving::Batcher decode(
        client, client->AllocateSlice(decode_devices, hw::IslandId(1)).value(),
        decode_costs.KvConfig(), dcfg, &metrics, &trace);
    serving::DisaggRouter router({&prefill}, {&decode}, &metrics, &trace);

    auto sink = [&router](serving::Request req) {
      return router.Offer(std::move(req));
    };
    ServingTenant tenant0(0, sink, &sim, tenant_spec(0));
    ServingTenant tenant1(1, sink, &sim, tenant_spec(1));
    tenant0.Start();
    tenant1.Start();
    sim.Run();

    runtime.object_store().CheckNoReservationWedge();
    const bool all_accounted =
        metrics.finished() + metrics.sheds() == metrics.arrivals();
    deadlocked |= sim.Deadlocked() || !router.idle() || !all_accounted;
    leaked += static_cast<double>(runtime.object_store().live_buffers());
    const double seconds = sim.now().ToSeconds();
    m.emplace_back("arrivals", static_cast<double>(metrics.arrivals()));
    m.emplace_back("d_finished", static_cast<double>(metrics.finished()));
    m.emplace_back("d_shed", static_cast<double>(metrics.sheds()));
    m.emplace_back("d_goodput_per_s",
                   static_cast<double>(metrics.finished()) / seconds);
    m.emplace_back("d_ttft_p50_us", metrics.TtftUs(50));
    m.emplace_back("d_ttft_p99_us", metrics.TtftUs(99));
    m.emplace_back("d_token_p50_us", metrics.TokenLatencyUs(50));
    m.emplace_back("d_token_p99_us", metrics.TokenLatencyUs(99));
    m.emplace_back("d_transfers",
                   static_cast<double>(router.transfers_completed()));
    m.emplace_back("d_reprefills", static_cast<double>(router.reprefills()));
    m.emplace_back("d_kv_mib", static_cast<double>(router.bytes_transferred()) /
                                   static_cast<double>(MiB(1)));
    m.emplace_back("d_spills",
                   static_cast<double>(runtime.object_store().spills_completed()));
    m.emplace_back("d_trace_lo",
                   static_cast<double>(trace.Checksum() & 0xffffffffULL));
    m.emplace_back("d_trace_hi", static_cast<double>(trace.Checksum() >> 32));
  }

  // --- Colocated baseline: same model, same total device count (4) ---
  {
    sim::Simulator sim;
    hw::SystemParams params = hw::SystemParams::TpuDefault();
    params.host_jitter_frac = 0;
    params.hbm_capacity = DisaggHbm(base_cfg());
    auto cluster = std::make_unique<hw::Cluster>(
        &sim, params, /*islands=*/2, /*hosts_per_island=*/1,
        /*devices_per_host=*/kDisaggDevices);
    PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
    pathways::Client* client = runtime.CreateClient();

    const auto costs =
        serving::ModelServingCosts::Derive(model, params, kDisaggDevices);
    ServingMetrics metrics;
    ServingTrace trace;
    BatcherConfig cfg = base_cfg();
    cfg.kv_budget_per_device = kv_budget(kDisaggDevices);
    costs.Apply(&cfg);
    serving::Batcher batcher(
        client, client->AllocateSlice(kDisaggDevices, hw::IslandId(0)).value(),
        costs.KvConfig(), cfg, &metrics, &trace);

    ServingTenant tenant0(0, &batcher, &sim, tenant_spec(0));
    ServingTenant tenant1(1, &batcher, &sim, tenant_spec(1));
    tenant0.Start();
    tenant1.Start();
    sim.Run();

    runtime.object_store().CheckNoReservationWedge();
    const bool all_accounted =
        batcher.finished() + batcher.shed() == metrics.arrivals();
    deadlocked |= sim.Deadlocked() || !batcher.idle() || !all_accounted;
    leaked += static_cast<double>(runtime.object_store().live_buffers());
    const double seconds = sim.now().ToSeconds();
    m.emplace_back("c_finished", static_cast<double>(batcher.finished()));
    m.emplace_back("c_shed", static_cast<double>(batcher.shed()));
    m.emplace_back("c_goodput_per_s",
                   static_cast<double>(batcher.finished()) / seconds);
    m.emplace_back("c_ttft_p50_us", metrics.TtftUs(50));
    m.emplace_back("c_ttft_p99_us", metrics.TtftUs(99));
    m.emplace_back("c_token_p50_us", metrics.TokenLatencyUs(50));
    m.emplace_back("c_token_p99_us", metrics.TokenLatencyUs(99));
    m.emplace_back("c_trace_lo",
                   static_cast<double>(trace.Checksum() & 0xffffffffULL));
    m.emplace_back("c_trace_hi", static_cast<double>(trace.Checksum() >> 32));
  }

  m.emplace_back("deadlocked", deadlocked ? 1.0 : 0.0);
  m.emplace_back("leaked_buffers", leaked);
  return m;
}

int RunDisagg(const pw::bench::Args& args) {
  pw::bench::Header(
      "LLM serving: disaggregated prefill/decode over DCN",
      "prefill islands stream finished KV to decode islands over the "
      "datacenter network; decode iterations never stall behind prompts");

  pw::sweep::ParamGrid grid;
  grid.AxisDoubles("rate_per_s", args.quick ? std::vector<double>{20, 60}
                                            : std::vector<double>{20, 45, 70})
      .AxisInts("prefill_devices", {1, 2, 3})
      .AxisDoubles("dcn_scale", {1.0, 0.25});

  auto point_fn = [&args](const pw::sweep::ParamPoint& p) {
    return MeasureDisaggPoint(p, args.quick);
  };
  pw::sweep::SweepRunner runner;  // hardware_concurrency threads
  pw::sweep::ResultTable table = runner.Run(grid, point_fn);
  pw::sweep::SweepRunner serial(pw::sweep::SweepRunner::Options{.threads = 1});
  pw::sweep::ResultTable table1 = serial.Run(grid, point_fn);
  std::ostringstream csv_mt, csv_1t;
  table.WriteCsv(csv_mt);
  table1.WriteCsv(csv_1t);
  const bool deterministic = csv_mt.str() == csv_1t.str();

  const auto points = grid.Points();
  double max_rate = 0;
  for (const auto& pt : points) {
    max_rate = std::max(max_rate, pt.GetDouble("rate_per_s"));
  }

  std::printf("%7s %6s %5s %9s %9s %10s %10s %10s %10s %7s %8s\n", "rate/s",
              "P:D", "dcn_x", "d_good/s", "c_good/s", "d_tok_p99", "c_tok_p99",
              "d_ttft_p99", "kv_MiB", "spills", "deadlock");
  bool any_deadlock = false;
  bool any_leak = false;
  double total_transfers = 0;
  double total_disagg_spills = 0;
  // Best (lowest) disagg p99 token latency over ratios at the top rate on
  // the healthy fabric, and colocated's p99 at the same rate.
  double best_d_tok_p99 = 1e18, best_d_ttft_p99 = 0, top_c_tok_p99 = 0;
  int best_ratio = 0;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    const auto& row = table.rows()[i];
    const double rate = points[i].GetDouble("rate_per_s");
    const int pd = points[i].GetInt("prefill_devices");
    const double dcn = points[i].GetDouble("dcn_scale");
    const bool dead = pw::bench::MetricOf(row, "deadlocked") > 0.5;
    any_deadlock |= dead;
    any_leak |= pw::bench::MetricOf(row, "leaked_buffers") > 0.5;
    total_transfers += pw::bench::MetricOf(row, "d_transfers");
    total_disagg_spills += pw::bench::MetricOf(row, "d_spills");
    const double d_tok = pw::bench::MetricOf(row, "d_token_p99_us");
    if (rate == max_rate && dcn == 1.0) {
      top_c_tok_p99 = pw::bench::MetricOf(row, "c_token_p99_us");
      if (d_tok < best_d_tok_p99) {
        best_d_tok_p99 = d_tok;
        best_d_ttft_p99 = pw::bench::MetricOf(row, "d_ttft_p99_us");
        best_ratio = pd;
      }
    }
    std::printf("%7.0f %4d:%d %4.2fx %9.1f %9.1f %8.0fus %8.0fus %8.0fus "
                "%7.0f %7.0f %8s\n",
                rate, pd, kDisaggDevices - pd, dcn,
                pw::bench::MetricOf(row, "d_goodput_per_s"),
                pw::bench::MetricOf(row, "c_goodput_per_s"), d_tok,
                pw::bench::MetricOf(row, "c_token_p99_us"),
                pw::bench::MetricOf(row, "d_ttft_p99_us"),
                pw::bench::MetricOf(row, "d_kv_mib"),
                pw::bench::MetricOf(row, "d_spills"), dead ? "YES" : "no");
  }
  std::printf("\nbest ratio %d:%d at %.0f req/s: disagg p99 token %.0fus vs "
              "colocated %.0fus; disagg p99 TTFT %.0fus\n",
              best_ratio, kDisaggDevices - best_ratio, max_rate,
              best_d_tok_p99, top_c_tok_p99, best_d_ttft_p99);
  std::printf("determinism across SweepRunner thread counts: %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  pw::bench::Reporter report("serving_disagg", args);
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    report.AddRow(table.rows()[i].params, table.rows()[i].metrics);
  }
  report.Summary("deadlocks", any_deadlock ? 1.0 : 0.0);
  report.Summary("best_ratio_prefill_devices", best_ratio);
  report.Summary("best_d_token_p99_us", best_d_tok_p99);
  report.Summary("top_rate_c_token_p99_us", top_c_tok_p99);
  report.Summary("best_d_ttft_p99_us", best_d_ttft_p99);
  report.Summary("transfers", total_transfers);
  report.Summary("disagg_spills", total_disagg_spills);
  report.Summary("deterministic", deterministic ? 1.0 : 0.0);
  report.Write();

  bool fail = false;
  if (any_deadlock) {
    std::fprintf(stderr, "FAIL: deadlock / unfinished point detected\n");
    fail = true;
  }
  if (any_leak) {
    std::fprintf(stderr, "FAIL: object-store buffers leaked at quiescence\n");
    fail = true;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
    fail = true;
  }
  if (total_transfers <= 0) {
    std::fprintf(stderr, "FAIL: no cross-island KV transfers completed\n");
    fail = true;
  }
  if (total_disagg_spills <= 0) {
    std::fprintf(stderr,
                 "FAIL: decode island never spilled — the 0.5x-budget "
                 "pressure was not real\n");
    fail = true;
  }
  if (best_d_tok_p99 >= top_c_tok_p99) {
    std::fprintf(stderr,
                 "FAIL: disagg p99 token latency %.0fus does not beat "
                 "colocated %.0fus at %.0f req/s\n",
                 best_d_tok_p99, top_c_tok_p99, max_rate);
    fail = true;
  }
  const double ttft_bound_us = 150000.0;
  if (best_d_ttft_p99 > ttft_bound_us) {
    std::fprintf(stderr, "FAIL: disagg p99 TTFT %.0fus exceeds %.0fus\n",
                 best_d_ttft_p99, ttft_bound_us);
    fail = true;
  }
  if (!fail) {
    std::printf("gates: zero deadlocks/leaks (degraded DCN included), "
                "disagg p99 token %.0fus < colocated %.0fus at %.0f req/s "
                "(ratio %d:%d), p99 TTFT %.0fus <= %.0fus, deterministic\n",
                best_d_tok_p99, top_c_tok_p99, max_rate, best_ratio,
                kDisaggDevices - best_ratio, best_d_ttft_p99, ttft_bound_us);
  }
  return fail ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const pw::bench::Args args = pw::bench::Args::Parse(argc, argv);
  if (args.disagg) return RunDisagg(args);
  pw::bench::Header(
      "LLM serving: continuous batching + KV cache under memory pressure",
      "iteration-level batching over gang-scheduled slices; per-sequence KV "
      "grows in the object store and pages to host DRAM under pressure");

  pw::sweep::ParamGrid grid;
  grid.AxisDoubles("rate_per_s",
                   args.quick ? std::vector<double>{1500, 24000}
                              : std::vector<double>{1500, 8000, 24000})
      .AxisInts("policy_continuous", {1, 0})
      .AxisDoubles("kv_scale", args.quick ? std::vector<double>{0.5}
                                          : std::vector<double>{0.5, 1.0});

  auto point_fn = [&args](const pw::sweep::ParamPoint& p) {
    return MeasurePoint(p, args.quick);
  };
  pw::sweep::SweepRunner runner;  // hardware_concurrency threads
  pw::sweep::ResultTable table = runner.Run(grid, point_fn);

  // Determinism gate: byte-identical table from a single-threaded rerun.
  pw::sweep::SweepRunner serial(pw::sweep::SweepRunner::Options{.threads = 1});
  pw::sweep::ResultTable table1 = serial.Run(grid, point_fn);
  std::ostringstream csv_mt, csv_1t;
  table.WriteCsv(csv_mt);
  table1.WriteCsv(csv_1t);
  const bool deterministic = csv_mt.str() == csv_1t.str();

  const auto points = grid.Points();
  double max_rate = 0, min_rate = 1e18;
  for (const auto& pt : points) {
    max_rate = std::max(max_rate, pt.GetDouble("rate_per_s"));
    min_rate = std::min(min_rate, pt.GetDouble("rate_per_s"));
  }

  std::printf("%10s %6s %8s %9s %6s %10s %9s %9s %9s %7s %8s\n", "rate/s",
              "policy", "kv_x", "goodput/s", "shed", "ttft_p50", "ttft_p99",
              "tok_p50", "tok_p99", "spills", "deadlock");
  bool any_deadlock = false;
  bool any_leak = false;
  double spills_at_half_budget = 0;
  double p99_ttft_low_rate_cont = 0;
  // goodput[policy][kv_scale] at the highest swept rate.
  std::map<std::pair<int, double>, double> top_rate_goodput;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    const auto& row = table.rows()[i];
    const double rate = points[i].GetDouble("rate_per_s");
    const bool cont = points[i].GetInt("policy_continuous") != 0;
    const double scale = points[i].GetDouble("kv_scale");
    const double goodput = pw::bench::MetricOf(row, "goodput_per_s");
    const bool deadlocked = pw::bench::MetricOf(row, "deadlocked") > 0.5;
    any_deadlock |= deadlocked;
    any_leak |= pw::bench::MetricOf(row, "leaked_buffers") > 0.5;
    if (scale == 0.5) {
      spills_at_half_budget += pw::bench::MetricOf(row, "spills");
    }
    if (cont && rate == min_rate) {
      p99_ttft_low_rate_cont = std::max(p99_ttft_low_rate_cont,
                                        pw::bench::MetricOf(row, "ttft_p99_us"));
    }
    if (rate == max_rate) top_rate_goodput[{cont ? 1 : 0, scale}] = goodput;
    std::printf("%10.0f %6s %7.2fx %9.0f %6.0f %9.0fus %8.0fus %8.0fus %8.0fus %7.0f %8s\n",
                rate, cont ? "cont" : "static", scale, goodput,
                pw::bench::MetricOf(row, "shed"),
                pw::bench::MetricOf(row, "ttft_p50_us"),
                pw::bench::MetricOf(row, "ttft_p99_us"),
                pw::bench::MetricOf(row, "token_p50_us"),
                pw::bench::MetricOf(row, "token_p99_us"),
                pw::bench::MetricOf(row, "spills"),
                deadlocked ? "YES" : "no");
  }

  // Continuous-vs-static goodput at the highest swept rate, worst case
  // over KV budget scales.
  double min_speedup = 1e18;
  for (const auto& [key, goodput] : top_rate_goodput) {
    if (key.first != 1) continue;
    const auto st = top_rate_goodput.find({0, key.second});
    if (st == top_rate_goodput.end() || st->second <= 0) continue;
    min_speedup = std::min(min_speedup, goodput / st->second);
  }
  std::printf("\ncontinuous vs static goodput at %.0f req/s: %.2fx (worst "
              "KV scale)\n", max_rate, min_speedup);
  std::printf("determinism across SweepRunner thread counts: %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  pw::bench::Reporter report("serving", args);
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    report.AddRow(table.rows()[i].params, table.rows()[i].metrics);
  }
  report.Summary("deadlocks", any_deadlock ? 1.0 : 0.0);
  report.Summary("continuous_goodput_x", min_speedup);
  report.Summary("spills_at_half_budget", spills_at_half_budget);
  report.Summary("p99_ttft_low_rate_us", p99_ttft_low_rate_cont);
  report.Summary("deterministic", deterministic ? 1.0 : 0.0);
  report.Write();

  bool fail = false;
  if (any_deadlock) {
    std::fprintf(stderr, "FAIL: deadlock / unfinished point detected\n");
    fail = true;
  }
  if (any_leak) {
    std::fprintf(stderr, "FAIL: object-store buffers leaked at quiescence\n");
    fail = true;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
    fail = true;
  }
  if (min_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: continuous batching only %.2fx static goodput at the "
                 "highest rate (need >= 1.5x)\n",
                 min_speedup);
    fail = true;
  }
  if (spills_at_half_budget <= 0) {
    std::fprintf(stderr,
                 "FAIL: no spilling at the 0.5x KV budget — memory pressure "
                 "was not real\n");
    fail = true;
  }
  const double p99_ttft_bound_us = 2000.0;
  if (p99_ttft_low_rate_cont > p99_ttft_bound_us) {
    std::fprintf(stderr,
                 "FAIL: p99 TTFT %.0fus at the lowest rate (continuous) "
                 "exceeds %.0fus\n",
                 p99_ttft_low_rate_cont, p99_ttft_bound_us);
    fail = true;
  }
  if (!fail) {
    std::printf("gates: zero deadlocks, continuous %.2fx >= 1.5x static, "
                "spilling active at 0.5x budget, p99 TTFT %.0fus <= %.0fus, "
                "deterministic\n",
                min_speedup, p99_ttft_low_rate_cont, p99_ttft_bound_us);
  }
  return fail ? 1 : 0;
}
