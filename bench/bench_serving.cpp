// LLM serving regime (docs/SERVING.md): two open-loop tenants drive a
// shared slice through the iteration-level batcher while per-sequence KV
// caches live in the ObjectStore — colocated continuous-vs-static batching
// under KV budgets by default, disaggregated prefill/decode over the DCN
// with --disagg.
//
// Thin wrapper: the measurement harnesses live in the "serving" and
// "serving_disagg" families (src/scenario/family_serving.cpp) and the
// grid/workload knobs in scenarios/serving.json / serving_disagg.json
// (override with --scenario <file>). This main only prints the tables and
// enforces the hard gates (zero deadlocks/leaks, continuous >= 1.5x static
// at the top rate, real spilling at the 0.5x budget, pinned p99 TTFT
// bounds, byte-identical sweep tables across thread counts).
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.h"

namespace {

int RunDisagg(const pw::bench::Args& args) {
  pw::bench::Header(
      "LLM serving: disaggregated prefill/decode over DCN",
      "prefill islands stream finished KV to decode islands over the "
      "datacenter network; decode iterations never stall behind prompts");

  const pw::scenario::Scenario s =
      pw::bench::LoadBenchScenario(args, "serving_disagg", "serving_disagg");
  const pw::scenario::RunResult result = pw::bench::RunBenchScenario(s, args);
  const int arm_devices = s.cluster.devices_per_host;

  double max_rate = 0;
  for (const auto& pt : result.points) {
    max_rate = std::max(max_rate, pt.GetDouble("rate_per_s"));
  }

  std::printf("%7s %6s %5s %9s %9s %10s %10s %10s %10s %7s %8s\n", "rate/s",
              "P:D", "dcn_x", "d_good/s", "c_good/s", "d_tok_p99",
              "c_tok_p99", "d_ttft_p99", "kv_MiB", "spills", "deadlock");
  bool any_leak = false;
  for (std::size_t i = 0; i < result.table.rows().size(); ++i) {
    const auto& row = result.table.rows()[i];
    const int pd =
        static_cast<int>(result.points[i].GetInt("prefill_devices"));
    const bool dead = pw::bench::MetricOf(row, "deadlocked") > 0.5;
    any_leak |= pw::bench::MetricOf(row, "leaked_buffers") > 0.5;
    std::printf("%7.0f %4d:%d %4.2fx %9.1f %9.1f %8.0fus %8.0fus %8.0fus "
                "%7.0f %7.0f %8s\n",
                result.points[i].GetDouble("rate_per_s"), pd,
                arm_devices - pd, result.points[i].GetDouble("dcn_scale"),
                pw::bench::MetricOf(row, "d_goodput_per_s"),
                pw::bench::MetricOf(row, "c_goodput_per_s"),
                pw::bench::MetricOf(row, "d_token_p99_us"),
                pw::bench::MetricOf(row, "c_token_p99_us"),
                pw::bench::MetricOf(row, "d_ttft_p99_us"),
                pw::bench::MetricOf(row, "d_kv_mib"),
                pw::bench::MetricOf(row, "d_spills"), dead ? "YES" : "no");
  }

  const bool any_deadlock =
      pw::bench::SummaryOf(result.summary, "deadlocks") > 0.5;
  const int best_ratio = static_cast<int>(
      pw::bench::SummaryOf(result.summary, "best_ratio_prefill_devices"));
  const double best_d_tok_p99 =
      pw::bench::SummaryOf(result.summary, "best_d_token_p99_us");
  const double top_c_tok_p99 =
      pw::bench::SummaryOf(result.summary, "top_rate_c_token_p99_us");
  const double best_d_ttft_p99 =
      pw::bench::SummaryOf(result.summary, "best_d_ttft_p99_us");
  const double total_transfers =
      pw::bench::SummaryOf(result.summary, "transfers");
  const double total_disagg_spills =
      pw::bench::SummaryOf(result.summary, "disagg_spills");
  const bool deterministic =
      pw::bench::SummaryOf(result.summary, "deterministic") > 0.5;

  std::printf("\nbest ratio %d:%d at %.0f req/s: disagg p99 token %.0fus vs "
              "colocated %.0fus; disagg p99 TTFT %.0fus\n",
              best_ratio, arm_devices - best_ratio, max_rate, best_d_tok_p99,
              top_c_tok_p99, best_d_ttft_p99);
  std::printf("determinism across SweepRunner thread counts: %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  bool fail = false;
  if (any_deadlock) {
    std::fprintf(stderr, "FAIL: deadlock / unfinished point detected\n");
    fail = true;
  }
  if (any_leak) {
    std::fprintf(stderr, "FAIL: object-store buffers leaked at quiescence\n");
    fail = true;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
    fail = true;
  }
  if (total_transfers <= 0) {
    std::fprintf(stderr, "FAIL: no cross-island KV transfers completed\n");
    fail = true;
  }
  if (total_disagg_spills <= 0) {
    std::fprintf(stderr,
                 "FAIL: decode island never spilled — the 0.5x-budget "
                 "pressure was not real\n");
    fail = true;
  }
  if (best_d_tok_p99 >= top_c_tok_p99) {
    std::fprintf(stderr,
                 "FAIL: disagg p99 token latency %.0fus does not beat "
                 "colocated %.0fus at %.0f req/s\n",
                 best_d_tok_p99, top_c_tok_p99, max_rate);
    fail = true;
  }
  const double ttft_bound_us = 150000.0;
  if (best_d_ttft_p99 > ttft_bound_us) {
    std::fprintf(stderr, "FAIL: disagg p99 TTFT %.0fus exceeds %.0fus\n",
                 best_d_ttft_p99, ttft_bound_us);
    fail = true;
  }
  if (!fail) {
    std::printf("gates: zero deadlocks/leaks (degraded DCN included), "
                "disagg p99 token %.0fus < colocated %.0fus at %.0f req/s "
                "(ratio %d:%d), p99 TTFT %.0fus <= %.0fus, deterministic\n",
                best_d_tok_p99, top_c_tok_p99, max_rate, best_ratio,
                arm_devices - best_ratio, best_d_ttft_p99, ttft_bound_us);
  }
  return fail ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const pw::bench::Args args = pw::bench::Args::Parse(
      argc, argv, pw::bench::kDisaggFlag | pw::bench::kScenarioFlag);
  if (args.disagg) return RunDisagg(args);
  pw::bench::Header(
      "LLM serving: continuous batching + KV cache under memory pressure",
      "iteration-level batching over gang-scheduled slices; per-sequence KV "
      "grows in the object store and pages to host DRAM under pressure");

  const pw::scenario::Scenario s =
      pw::bench::LoadBenchScenario(args, "serving", "serving");
  const pw::scenario::RunResult result = pw::bench::RunBenchScenario(s, args);

  double max_rate = 0;
  for (const auto& pt : result.points) {
    max_rate = std::max(max_rate, pt.GetDouble("rate_per_s"));
  }

  std::printf("%10s %6s %8s %9s %6s %10s %9s %9s %9s %7s %8s\n", "rate/s",
              "policy", "kv_x", "goodput/s", "shed", "ttft_p50", "ttft_p99",
              "tok_p50", "tok_p99", "spills", "deadlock");
  bool any_leak = false;
  for (std::size_t i = 0; i < result.table.rows().size(); ++i) {
    const auto& row = result.table.rows()[i];
    const bool cont = result.points[i].GetInt("policy_continuous") != 0;
    const bool deadlocked = pw::bench::MetricOf(row, "deadlocked") > 0.5;
    any_leak |= pw::bench::MetricOf(row, "leaked_buffers") > 0.5;
    std::printf(
        "%10.0f %6s %7.2fx %9.0f %6.0f %9.0fus %8.0fus %8.0fus %8.0fus "
        "%7.0f %8s\n",
        result.points[i].GetDouble("rate_per_s"), cont ? "cont" : "static",
        result.points[i].GetDouble("kv_scale"),
        pw::bench::MetricOf(row, "goodput_per_s"),
        pw::bench::MetricOf(row, "shed"),
        pw::bench::MetricOf(row, "ttft_p50_us"),
        pw::bench::MetricOf(row, "ttft_p99_us"),
        pw::bench::MetricOf(row, "token_p50_us"),
        pw::bench::MetricOf(row, "token_p99_us"),
        pw::bench::MetricOf(row, "spills"), deadlocked ? "YES" : "no");
  }

  const bool any_deadlock =
      pw::bench::SummaryOf(result.summary, "deadlocks") > 0.5;
  const double min_speedup =
      pw::bench::SummaryOf(result.summary, "continuous_goodput_x");
  const double spills_at_half_budget =
      pw::bench::SummaryOf(result.summary, "spills_at_half_budget");
  const double p99_ttft_low_rate_cont =
      pw::bench::SummaryOf(result.summary, "p99_ttft_low_rate_us");
  const bool deterministic =
      pw::bench::SummaryOf(result.summary, "deterministic") > 0.5;

  std::printf("\ncontinuous vs static goodput at %.0f req/s: %.2fx (worst "
              "KV scale)\n", max_rate, min_speedup);
  std::printf("determinism across SweepRunner thread counts: %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  bool fail = false;
  if (any_deadlock) {
    std::fprintf(stderr, "FAIL: deadlock / unfinished point detected\n");
    fail = true;
  }
  if (any_leak) {
    std::fprintf(stderr, "FAIL: object-store buffers leaked at quiescence\n");
    fail = true;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: sweep table differs between 1 and N threads\n");
    fail = true;
  }
  if (min_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: continuous batching only %.2fx static goodput at the "
                 "highest rate (need >= 1.5x)\n",
                 min_speedup);
    fail = true;
  }
  if (spills_at_half_budget <= 0) {
    std::fprintf(stderr,
                 "FAIL: no spilling at the 0.5x KV budget — memory pressure "
                 "was not real\n");
    fail = true;
  }
  const double p99_ttft_bound_us = 2000.0;
  if (p99_ttft_low_rate_cont > p99_ttft_bound_us) {
    std::fprintf(stderr,
                 "FAIL: p99 TTFT %.0fus at the lowest rate (continuous) "
                 "exceeds %.0fus\n",
                 p99_ttft_low_rate_cont, p99_ttft_bound_us);
    fail = true;
  }
  if (!fail) {
    std::printf("gates: zero deadlocks, continuous %.2fx >= 1.5x static, "
                "spilling active at 0.5x budget, p99 TTFT %.0fus <= %.0fus, "
                "deterministic\n",
                min_speedup, p99_ttft_low_rate_cont, p99_ttft_bound_us);
  }
  return fail ? 1 : 0;
}
