// Figure 7: parallel vs sequential asynchronous dispatch across pipeline
// stages. Each stage runs on 4 TPU cores of a different host; data moves
// stage-to-stage over ICI. Paper shape: parallel dispatch amortizes the
// fixed client and scheduling overheads as stages grow; sequential dispatch
// serializes host-side work behind every enqueue and flattens out far lower.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "pathways/pathways.h"
#include "xlasim/compiled_function.h"

namespace {

double MeasurePipeline(int stages, pw::pathways::DispatchMode mode) {
  using namespace pw;
  using namespace pw::pathways;
  sim::Simulator sim;
  // One stage per host, 4 TPU cores each.
  hw::SystemParams params;
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, 1, stages, 4);
  PathwaysOptions options;
  options.dispatch = mode;
  PathwaysRuntime runtime(cluster.get(), options);
  Client* client = runtime.CreateClient();

  ProgramBuilder pb("pipeline");
  ValueRef v{};
  bool first = true;
  for (int s = 0; s < stages; ++s) {
    auto slice = client->AllocateSlice(4).value();
    auto fn = xlasim::CompiledFunction::Synthetic(
        "stage" + std::to_string(s), 4, Duration::Micros(20),
        net::CollectiveKind::kAllReduce, 4, /*io_bytes=*/KiB(64));
    std::vector<ValueRef> inputs;
    if (!first) inputs.push_back(v);
    v = pb.Call(fn, slice, std::move(inputs));
    first = false;
  }
  pb.Result(v);
  PathwaysProgram prog = std::move(pb).Build();

  // Latency benchmark: one program at a time; computations/s = S / latency.
  const int kPrograms = 12;
  int done = 0;
  TimePoint start;
  for (int p = 0; p < kPrograms; ++p) {
    auto result = client->Run(&prog);
    sim.RunUntilPredicate([&result] { return result.ready(); });
    for (const auto& out : result.value().outputs) {
      runtime.object_store().Release(out.id);
    }
    if (p == 1) start = sim.now();  // skip warm-up program
    if (p >= 2) ++done;
  }
  const Duration elapsed = sim.now() - start;
  return static_cast<double>(done) * stages / elapsed.ToSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "Figure 7: parallel vs sequential async dispatch (computations/sec)",
      "parallel >> sequential; parallel keeps rising as stages amortize "
      "client + scheduling overheads (paper peaks ~3000/s at 128 stages)");

  bench::Reporter report("fig7_async_dispatch", args);
  const std::vector<int> stage_counts =
      args.quick ? std::vector<int>{1, 8, 32} : std::vector<int>{1, 4, 8, 16, 32, 64, 128};
  std::printf("%8s %14s %14s %10s\n", "stages", "parallel", "sequential",
              "speedup");
  double last_speedup = 0;
  for (const int stages : stage_counts) {
    const double par = MeasurePipeline(stages, pathways::DispatchMode::kParallel);
    const double seq =
        MeasurePipeline(stages, pathways::DispatchMode::kSequential);
    last_speedup = par / seq;
    std::printf("%8d %14.1f %14.1f %9.2fx\n", stages, par, seq, par / seq);
    report.AddRow({{"stages", static_cast<std::int64_t>(stages)}},
                  {{"parallel_comp_per_sec", par},
                   {"sequential_comp_per_sec", seq},
                   {"speedup", par / seq}});
  }
  report.Summary("speedup_at_max_stages", last_speedup);
  report.Write();
  return 0;
}
