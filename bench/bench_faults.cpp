// Fault sweep: goodput and recovery latency under injected device crashes,
// across a fault-rate x island-size grid (the resilience extension of
// ROADMAP's "as many scenarios as you can imagine"; see docs/FAULTS.md).
// Each grid point runs its own fault-free baseline, so rows report absolute
// goodput, goodput relative to fault-free, and the injector's
// recovery-latency stats.
//
// Thin wrapper: the measurement harness lives in the "faults" family
// (src/scenario/family_faults.cpp) and the grid/workload knobs in
// scenarios/faults.json (override with --scenario <file>). This main only
// prints the table and enforces the graceful-degradation gate.
#include <cstdio>
#include <variant>

#include "bench_common.h"

int main(int argc, char** argv) {
  const pw::bench::Args args =
      pw::bench::Args::Parse(argc, argv, pw::bench::kScenarioFlag);
  pw::bench::Header(
      "faults: goodput & recovery latency vs fault rate x island size",
      "resilience extension (no paper figure); goodput degrades gracefully "
      "with fault rate, recovery latency ~ backoff + remap + resubmit");

  const pw::scenario::Scenario s =
      pw::bench::LoadBenchScenario(args, "faults", "faults");
  const pw::scenario::RunResult result = pw::bench::RunBenchScenario(s, args);

  std::printf("%8s %10s %12s %12s %10s %14s %12s\n", "devices", "faults/s",
              "goodput/s", "baseline/s", "ratio", "recovery(us)", "aborted");
  for (const auto& row : result.table.rows()) {
    std::printf("%8lld %10lld %12.0f %12.0f %9.2f%% %14.1f %12.0f\n",
                static_cast<long long>(
                    std::get<std::int64_t>(row.params[0].second)),
                static_cast<long long>(
                    std::get<std::int64_t>(row.params[1].second)),
                pw::bench::MetricOf(row, "goodput_steps_per_sec"),
                pw::bench::MetricOf(row, "baseline_steps_per_sec"),
                100.0 * pw::bench::MetricOf(row, "goodput_ratio"),
                pw::bench::MetricOf(row, "recovery_latency_mean_us"),
                pw::bench::MetricOf(row, "executions_aborted"));
  }

  // Shape gate: goodput must degrade gracefully, not collapse — under the
  // heaviest injected fault rate the system should still complete a
  // meaningful fraction of baseline steps.
  const double mean_ratio =
      pw::bench::SummaryOf(result.summary, "mean_goodput_ratio");
  if (mean_ratio < 0.5) {
    std::fprintf(stderr,
                 "FAIL: mean goodput ratio %.2f under faults — recovery path "
                 "is losing most of the cluster's useful work\n",
                 mean_ratio);
    return 1;
  }
  return 0;
}
