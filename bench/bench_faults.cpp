// Fault sweep: goodput and recovery latency under injected device crashes,
// across a fault-rate x island-size grid (no paper figure — this is the
// resilience extension of ROADMAP's "as many scenarios as you can imagine";
// see docs/FAULTS.md).
//
// Workload per grid point: one client trains a gang-scheduled AllReduce
// step over half the island through Client::RunWithRetry while a seeded
// FaultPlan crashes devices (all recovering), slows stragglers, and
// degrades one NIC. Each point also runs its own fault-free baseline, so
// rows report absolute goodput, goodput relative to fault-free, and the
// injector's recovery-latency stats. Points fan out through SweepRunner;
// every point builds a private single-threaded simulator, so the table is
// byte-identical across thread counts and runs.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "pathways/pathways.h"

namespace {

using namespace pw;
using pathways::Client;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;

struct PointResult {
  double steps_ok = 0;
  double horizon_sec = 0;
  double recovery_mean_us = 0;
  double recovery_max_us = 0;
  double recovery_samples = 0;
  double aborted = 0;
  double retries = 0;

  double goodput() const { return steps_ok / horizon_sec; }
};

// Runs the training loop on an island of `island_devices` with `crashes`
// injected crashes (0 = fault-free baseline) over `horizon`.
PointResult RunPoint(int island_devices, int crashes, Duration horizon,
                     std::uint64_t seed) {
  sim::Simulator sim;
  hw::SystemParams params = hw::SystemParams::TpuDefault();
  const int hosts = std::max(1, island_devices / 4);
  const int devs_per_host = island_devices / hosts;
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, /*islands=*/1,
                                               hosts, devs_per_host);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});

  faults::FaultPlan plan;
  if (crashes > 0) {
    faults::FaultPlan::RandomSpec spec;
    spec.device_crashes = crashes;
    spec.stragglers = crashes / 2;
    spec.link_degrades = 1;
    spec.partitions = 0;
    spec.horizon = horizon;
    spec.min_window = Duration::Millis(1);
    spec.max_window = Duration::Millis(5);
    spec.always_recover = true;
    plan = faults::FaultPlan::Random(
        seed, faults::ClusterShape{cluster->num_devices(), cluster->num_hosts()},
        spec);
  }
  faults::FaultInjector injector(cluster.get(), &runtime, plan);
  injector.Arm();

  Client* client = runtime.CreateClient();
  auto slice = client->AllocateSlice(island_devices / 2).value();
  auto fn = xlasim::CompiledFunction::Synthetic(
      "step", island_devices / 2, Duration::Micros(300),
      net::CollectiveKind::kAllReduce, KiB(64));
  ProgramBuilder pb("train");
  pb.Call(fn, slice, {});
  PathwaysProgram prog = std::move(pb).Build();

  pathways::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = Duration::Micros(250);

  PointResult out;
  const TimePoint end = TimePoint() + horizon;
  while (sim.now() < end) {
    auto r = client->RunWithRetry(&prog, {}, policy);
    const bool resolved = sim.RunUntilPredicate([&r] { return r.ready(); });
    if (!resolved) break;  // would only happen on a liveness bug
    if (!r.value().failed) out.steps_ok += 1;
  }
  sim.Run();  // drain outstanding recoveries
  out.horizon_sec = horizon.ToSeconds();
  out.recovery_mean_us = injector.stats().recovery_latency_us.mean();
  out.recovery_max_us = injector.stats().recovery_latency_us.max();
  out.recovery_samples =
      static_cast<double>(injector.stats().recovery_latency_us.count());
  out.aborted = static_cast<double>(runtime.executions_aborted());
  out.retries = static_cast<double>(client->retries());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header(
      "faults: goodput & recovery latency vs fault rate x island size",
      "resilience extension (no paper figure); goodput degrades gracefully "
      "with fault rate, recovery latency ~ backoff + remap + resubmit");

  const Duration horizon =
      args.quick ? Duration::Millis(50) : Duration::Millis(200);
  const std::vector<std::int64_t> island_sizes{4, 8, 16};
  const std::vector<std::int64_t> fault_rates{25, 50, 100};  // crashes/sec

  sweep::ParamGrid grid;
  grid.AxisInts("island_devices", island_sizes)
      .AxisInts("faults_per_sec", fault_rates);

  sweep::SweepRunner runner;
  sweep::ResultTable table = runner.Run(
      grid, [&horizon](const sweep::ParamPoint& p) -> sweep::Metrics {
        const int devices = static_cast<int>(p.GetInt("island_devices"));
        const int rate = static_cast<int>(p.GetInt("faults_per_sec"));
        const int crashes = std::max(
            1, static_cast<int>(rate * horizon.ToSeconds()));
        // Seed varies per point so grid cells see different fault draws but
        // every rerun of the bench sees the same ones.
        const std::uint64_t seed = 0x5eed + p.index();
        const PointResult faulted = RunPoint(devices, crashes, horizon, seed);
        const PointResult baseline = RunPoint(devices, 0, horizon, seed);
        return {{"goodput_steps_per_sec", faulted.goodput()},
                {"baseline_steps_per_sec", baseline.goodput()},
                {"goodput_ratio", faulted.goodput() / baseline.goodput()},
                {"recovery_latency_mean_us", faulted.recovery_mean_us},
                {"recovery_latency_max_us", faulted.recovery_max_us},
                {"recovery_samples", faulted.recovery_samples},
                {"executions_aborted", faulted.aborted},
                {"client_retries", faulted.retries}};
      });

  bench::Reporter report("faults", args);
  std::printf("%8s %10s %12s %12s %10s %14s %12s\n", "devices", "faults/s",
              "goodput/s", "baseline/s", "ratio", "recovery(us)", "aborted");
  double ratio_sum = 0, recovery_sum = 0;
  int rows = 0;
  for (const auto& row : table.rows()) {
    auto metric = [&row](const char* name) {
      for (const auto& [k, v] : row.metrics) {
        if (k == name) return v;
      }
      return 0.0;
    };
    std::printf("%8lld %10lld %12.0f %12.0f %9.2f%% %14.1f %12.0f\n",
                static_cast<long long>(
                    std::get<std::int64_t>(row.params[0].second)),
                static_cast<long long>(
                    std::get<std::int64_t>(row.params[1].second)),
                metric("goodput_steps_per_sec"),
                metric("baseline_steps_per_sec"),
                100.0 * metric("goodput_ratio"),
                metric("recovery_latency_mean_us"),
                metric("executions_aborted"));
    report.AddRow(row.params, row.metrics);
    ratio_sum += metric("goodput_ratio");
    recovery_sum += metric("recovery_latency_mean_us");
    ++rows;
  }
  report.Summary("mean_goodput_ratio", ratio_sum / rows);
  report.Summary("mean_recovery_latency_us", recovery_sum / rows);
  report.Write();

  // Shape gate: goodput must degrade gracefully, not collapse — under the
  // heaviest injected fault rate the system should still complete a
  // meaningful fraction of baseline steps.
  if (ratio_sum / rows < 0.5) {
    std::fprintf(stderr,
                 "FAIL: mean goodput ratio %.2f under faults — recovery path "
                 "is losing most of the cluster's useful work\n",
                 ratio_sum / rows);
    return 1;
  }
  return 0;
}
