// Ablations over the design choices DESIGN.md calls out:
//   A. parallel asynchronous dispatch (vs sequential)         — §4.5
//   B. sharded-buffer client bookkeeping (vs per-shard)       — §4.2
//   C. centralized gang scheduling (vs uncoordinated enqueue) — §4.4
//   D. compact sharded dataflow representation (vs M x N)     — §4.3
#include <memory>
#include <vector>

#include "bench_common.h"
#include "pathways/pathways.h"
#include "plaque/program.h"
#include "xlasim/compiled_function.h"

namespace {

using namespace pw;
using namespace pw::pathways;

// --- A: dispatch mode on an 8-stage pipeline of small computations ---
double PipelineLatencyMs(DispatchMode mode) {
  sim::Simulator sim;
  auto cluster =
      std::make_unique<hw::Cluster>(&sim, hw::SystemParams::TpuDefault(), 1, 8, 4);
  PathwaysOptions options;
  options.dispatch = mode;
  PathwaysRuntime runtime(cluster.get(), options);
  Client* client = runtime.CreateClient();
  ProgramBuilder pb("pipe");
  ValueRef v{};
  for (int s = 0; s < 8; ++s) {
    auto fn = xlasim::CompiledFunction::Synthetic("st", 4, Duration::Micros(20));
    std::vector<ValueRef> in;
    if (s > 0) in.push_back(v);
    v = pb.Call(fn, client->AllocateSlice(4).value(), std::move(in));
  }
  pb.Result(v);
  auto prog = std::move(pb).Build();
  auto result = client->Run(&prog);
  sim.RunUntilPredicate([&result] { return result.ready(); });
  return sim.now().ToMillis();
}

// --- B: client bookkeeping cost at 2048 shards ---
double CompletionRateAt2048Shards(bool sharded_bookkeeping) {
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigA(&sim, 512);  // 2048 devices
  PathwaysOptions options;
  options.sharded_buffer_bookkeeping = sharded_bookkeeping;
  PathwaysRuntime runtime(cluster.get(), options);
  Client* client = runtime.CreateClient();
  auto slice = client->AllocateSlice(2048).value();
  // Gang-synchronized kernel (collective): all 2048 completion messages
  // burst at once, putting client bookkeeping on the critical path.
  auto fn = xlasim::CompiledFunction::Synthetic(
      "big", 2048, Duration::Millis(5), net::CollectiveKind::kAllReduce, 4);
  ProgramBuilder pb("p");
  pb.Call(fn, slice, {});
  auto prog = std::move(pb).Build();
  const TimePoint start = sim.now();
  const int kRuns = 3;
  for (int i = 0; i < kRuns; ++i) {
    auto r = client->Run(&prog);
    sim.RunUntilPredicate([&r] { return r.ready(); });
    runtime.object_store().Release(r.value().outputs[0].id);
  }
  return kRuns / (sim.now() - start).ToSeconds();
}

// --- C: gang scheduling vs uncoordinated multi-program enqueue ---
// Returns {uncoordinated_deadlocked, gang_completed_programs}.
std::pair<bool, int> GangSchedulingAblation() {
  // Uncoordinated: two programs' collectives enqueued in opposite orders on
  // two devices (what uncoordinated clients can produce).
  sim::Simulator sim;
  net::CollectiveModel model;
  hw::Device d0(&sim, hw::DeviceId(0), hw::IslandId(0), GiB(16), Duration::Zero());
  hw::Device d1(&sim, hw::DeviceId(1), hw::IslandId(0), GiB(16), Duration::Zero());
  auto groupA = std::make_shared<hw::CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "progA");
  auto groupB = std::make_shared<hw::CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "progB");
  auto mk = [](std::shared_ptr<hw::CollectiveGroup> g) {
    hw::KernelDesc k;
    k.pre_time = Duration::Micros(1);
    k.collective = std::move(g);
    k.collective_bytes = 4;
    return k;
  };
  d0.Enqueue(mk(groupA));
  d0.Enqueue(mk(groupB));
  d1.Enqueue(mk(groupB));
  d1.Enqueue(mk(groupA));
  sim.Run();
  std::printf("  uncoordinated enqueue: %s\n",
              sim.Deadlocked() ? "DEADLOCK (detected by probes)" : "ok");

  // Coordinated: the same two programs through the gang scheduler.
  sim::Simulator sim2;
  auto cluster = std::make_unique<hw::Cluster>(
      &sim2, hw::SystemParams::TpuDefault(), 1, 1, 2);
  PathwaysRuntime runtime(cluster.get(), PathwaysOptions{});
  Client* c1 = runtime.CreateClient();
  Client* c2 = runtime.CreateClient();
  auto fn = xlasim::CompiledFunction::Synthetic(
      "ar", 2, Duration::Micros(10), net::CollectiveKind::kAllReduce, 4);
  ProgramBuilder pb1("p1"), pb2("p2");
  pb1.Call(fn, c1->AllocateSlice(2).value(), {});
  pb2.Call(fn, c2->AllocateSlice(2).value(), {});
  auto prog1 = std::move(pb1).Build();
  auto prog2 = std::move(pb2).Build();
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    c1->Run(&prog1).Then([&](const ExecutionResult&) { ++completed; });
    c2->Run(&prog2).Then([&](const ExecutionResult&) { ++completed; });
  }
  sim2.Run();
  std::printf("  gang-scheduled:        %d/100 programs completed, %s\n",
              completed, sim2.Deadlocked() ? "DEADLOCK" : "no deadlock");
  return {sim.Deadlocked(), completed};
}

// --- D: compact representation ---
void CompactRepresentationAblation() {
  // Chained execution of 2 computations with N shards each: Pathways/PLAQUE
  // keeps 4 nodes; a TF1-style materialized graph stores per-shard nodes
  // and M x N edges between sharded computations.
  std::printf("  %-10s %22s %26s\n", "shards", "compact nodes(edges)",
              "materialized nodes(edges)");
  for (const int n : {16, 256, 2048}) {
    plaque::DataflowProgram p("chain");
    const auto arg = p.AddNode(plaque::NodeKind::kArg, "arg", n);
    const auto a = p.AddNode(plaque::NodeKind::kCompute, "A", n);
    const auto b = p.AddNode(plaque::NodeKind::kCompute, "B", n);
    const auto res = p.AddNode(plaque::NodeKind::kResult, "res", n);
    p.AddEdge(arg, a);
    p.AddEdge(a, b);
    p.AddEdge(b, res);
    const long long mat_nodes = 4LL * n;
    const long long mat_edges = 2LL * n + 1LL * n * n;  // A->B is all-to-all
    std::printf("  %-10d %12d(%d) %20lld(%lld)\n", n, p.num_nodes(),
                p.num_edges(), mat_nodes, mat_edges);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::Header("Ablations: the design choices behind Pathways",
                "each mechanism removed in isolation");
  bench::Reporter report("ablations", args);

  std::printf("\n[A] parallel async dispatch (8-stage pipeline latency):\n");
  const double par = PipelineLatencyMs(DispatchMode::kParallel);
  const double seq = PipelineLatencyMs(DispatchMode::kSequential);
  std::printf("  parallel: %.3f ms   sequential: %.3f ms   (%.2fx faster)\n",
              par, seq, seq / par);
  report.AddRow({{"ablation", std::string("parallel_dispatch")}},
                {{"parallel_latency_ms", par},
                 {"sequential_latency_ms", seq},
                 {"speedup", seq / par}});

  std::printf("\n[B] sharded-buffer bookkeeping (2048-shard program rate):\n");
  const double with_sb = CompletionRateAt2048Shards(true);
  const double without_sb = CompletionRateAt2048Shards(false);
  std::printf("  logical-buffer refcounts: %.2f programs/s\n", with_sb);
  std::printf("  per-shard bookkeeping:    %.2f programs/s  (%.2fx slower)\n",
              without_sb, with_sb / without_sb);
  report.AddRow({{"ablation", std::string("sharded_bookkeeping")}},
                {{"with_programs_per_sec", with_sb},
                 {"without_programs_per_sec", without_sb},
                 {"speedup", with_sb / without_sb}});

  std::printf("\n[C] gang scheduling vs uncoordinated enqueue:\n");
  const auto [uncoordinated_deadlock, gang_completed] = GangSchedulingAblation();
  report.AddRow({{"ablation", std::string("gang_scheduling")}},
                {{"uncoordinated_deadlocked", uncoordinated_deadlock ? 1.0 : 0.0},
                 {"gang_completed_programs", static_cast<double>(gang_completed)}});

  std::printf("\n[D] compact sharded dataflow representation:\n");
  CompactRepresentationAblation();
  report.Write();
  return 0;
}
